// Package server is the lzwtcd compression service: an HTTP front end
// over the library's compression pipeline, streaming wire-format bodies
// (internal/wire) and running jobs on the internal/parallel pool.
//
// Endpoints:
//
//	POST /v1/compress         cube text in, wire container out
//	                          (?char ?dict ?entry ?fill ?tie ?full ?shard)
//	POST /v1/decompress       wire container in, fully specified cube text out
//	GET  /v1/stats            JSON service counters
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text exposition (internal/telemetry)
//	GET  /debug/trace/recent  last-N request traces as JSON (?n)
//
// Every request is bounded two ways: http.MaxBytesReader enforces the
// body limit (413 with a structured error body) and a per-request
// timeout bounds wall clock (408). Errors are always the JSON envelope
// of api.go, carrying the request ID the server assigned or echoed
// from X-Request-Id. Serve drains gracefully: on context cancellation
// the listener closes, in-flight requests run to completion inside the
// drain timeout, and only then does Serve return.
//
// Tracing: compress and decompress requests run under a server span
// (linked beneath the caller's span when the request carries an
// X-Lzwtc-Trace header), and the pool jobs, core phases and wire
// framing underneath nest as child spans. Completed spans land in an
// in-memory ring buffer served by /debug/trace/recent and in any sinks
// the Config supplies.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"lzwtc"
	"lzwtc/internal/core"
	"lzwtc/internal/dictstore"
	"lzwtc/internal/jobs"
	"lzwtc/internal/telemetry"
)

// Metric names exported at /metrics. Every name is a distinct package
// const — never computed — so the lzwtcvet metricname check can audit
// the full /metrics surface against the names the tests assert.
const (
	MetricRequests     = "lzwtcd_requests_total"
	MetricErrors       = "lzwtcd_errors_total"
	MetricInFlight     = "lzwtcd_in_flight"
	MetricLatency      = "lzwtcd_request_seconds"
	MetricBytesIn      = "lzwtcd_bytes_in_total"
	MetricBytesOut     = "lzwtcd_bytes_out_total"
	MetricPatternsIn   = "lzwtcd_patterns_compressed_total"
	MetricPatternsOut  = "lzwtcd_patterns_decompressed_total"
	MetricDrainStarted = "lzwtcd_drain_started"

	// Per-endpoint request counters (the lzwtcd_<endpoint>_requests_total
	// family handleStats folds back into its endpoint map).
	MetricCompressRequests   = "lzwtcd_compress_requests_total"
	MetricDecompressRequests = "lzwtcd_decompress_requests_total"
	MetricStatsRequests      = "lzwtcd_stats_requests_total"
	MetricHealthRequests     = "lzwtcd_healthz_requests_total"
	MetricMetricsRequests    = "lzwtcd_metrics_requests_total"
	MetricTraceRequests      = "lzwtcd_trace_requests_total"
	MetricOtherRequests      = "lzwtcd_other_requests_total"

	// Job-tier endpoints: submissions and the per-job status/result/
	// cancel operations are counted separately, since one submission
	// typically fans out into many polls.
	MetricJobSubmitRequests = "lzwtcd_job_submit_requests_total"
	MetricJobRequests       = "lzwtcd_job_requests_total"

	// MetricDictRequests counts /v1/dict operations (train, fetch,
	// upload, evict together; the store's own hit/miss/train counters
	// break the outcomes down).
	MetricDictRequests = "lzwtcd_dict_requests_total"
)

// SLO latency histograms for the two data-plane endpoints. Each request
// contributes two observations — time to first response byte and time
// to completion — into the _ok or _error family for its outcome, so an
// SLO burn query never mixes fast failures into the success latency.
// The registry is label-free by design; outcome is encoded in the name.
const (
	MetricSLOCompressFirstByteOK    = "lzwtcd_slo_compress_first_byte_seconds_ok"
	MetricSLOCompressFirstByteErr   = "lzwtcd_slo_compress_first_byte_seconds_error"
	MetricSLOCompressDoneOK         = "lzwtcd_slo_compress_seconds_ok"
	MetricSLOCompressDoneErr        = "lzwtcd_slo_compress_seconds_error"
	MetricSLODecompressFirstByteOK  = "lzwtcd_slo_decompress_first_byte_seconds_ok"
	MetricSLODecompressFirstByteErr = "lzwtcd_slo_decompress_first_byte_seconds_error"
	MetricSLODecompressDoneOK       = "lzwtcd_slo_decompress_seconds_ok"
	MetricSLODecompressDoneErr      = "lzwtcd_slo_decompress_seconds_error"
)

// Trace span names for the server request handlers.
const (
	SpanCompress   = "server.compress"
	SpanDecompress = "server.decompress"
	// SpanJobSubmit covers the synchronous part of an async submission
	// (parse + admit). The job's own execution is the jobs.SpanJobRun
	// span, linked under this one through the submit context. Status
	// polls are deliberately untraced — hundreds per job would drown the
	// trace ring.
	SpanJobSubmit = "server.job.submit"
)

// processName stamps this server's trace spans, distinguishing them
// from client-side spans in a merged trace.
const processName = "lzwtcd"

// latencyBuckets spans sub-millisecond cache hits to multi-second
// sharded runs.
func latencyBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// Config tunes the service. The zero value serves with the defaults
// below.
type Config struct {
	// MaxBodyBytes bounds request bodies; <= 0 means 64 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's wall clock; <= 0 means 60s.
	RequestTimeout time.Duration
	// Workers bounds the parallel pool per request; <= 0 means
	// GOMAXPROCS (the pool's own default).
	Workers int
	// Registry receives service metrics; nil allocates a private one.
	// The compression pipeline records into the same registry, so
	// /metrics and /v1/stats cover core and pool metrics too.
	Registry *telemetry.Registry
	// TraceCapacity bounds the in-memory trace ring buffer behind
	// /debug/trace/recent; <= 0 means 64 traces.
	TraceCapacity int
	// Sinks receive the server's telemetry events (trace spans, run
	// records) in addition to the built-in trace ring buffer. Optional.
	Sinks []telemetry.Sink

	// JobQueueDepth bounds admitted-but-not-running async jobs; <= 0
	// means 256 (jobs.Config default).
	JobQueueDepth int
	// JobConcurrent bounds async jobs running at once; <= 0 means 2.
	JobConcurrent int
	// JobResultTTL is how long finished jobs and their results are
	// retained; <= 0 means 5 minutes.
	JobResultTTL time.Duration
	// JobSweepInterval is the TTL sweeper cadence; <= 0 derives from
	// JobResultTTL.
	JobSweepInterval time.Duration
	// JobQuota is the per-tenant admission policy for the job tier; the
	// zero value admits everything.
	JobQuota jobs.Quota

	// DictStore is the shared-dictionary cache tier behind /v1/dict and
	// the dictid compression path. nil opens a private memory-only
	// store wired to the server's registry; an injected store is NOT
	// closed by the server (its owner closes it) but its resolve spans
	// are re-pointed at the server's recorder so they join request
	// traces.
	DictStore *dictstore.Store
}

// Server is the lzwtcd HTTP service.
type Server struct {
	cfg      Config
	reg      *telemetry.Registry
	rec      *telemetry.Recorder
	traces   *telemetry.TraceBuffer
	sinks    []telemetry.Sink // recorder's sink set; per-job recorders extend it
	jobs     *jobs.Manager
	dict     *dictstore.Store
	ownDict  bool
	mux      *http.ServeMux
	start    time.Time
	inFlight atomic.Int64
	draining atomic.Bool

	requests    *telemetry.Counter
	errs        *telemetry.Counter
	bytesIn     *telemetry.Counter
	bytesOut    *telemetry.Counter
	patternsIn  *telemetry.Counter
	patternsOut *telemetry.Counter
	latency     *telemetry.Histogram
	inFlightG   *telemetry.Gauge
}

// sloHists holds one endpoint's SLO instruments, resolved once at
// construction. A nil *sloHists disables SLO accounting (control-plane
// endpoints).
type sloHists struct {
	firstByteOK  *telemetry.Histogram
	firstByteErr *telemetry.Histogram
	doneOK       *telemetry.Histogram
	doneErr      *telemetry.Histogram
}

// observe records one finished request: firstByte and done are seconds
// from request start (firstByte falls back to done when the handler
// never wrote a byte).
func (h *sloHists) observe(ok bool, firstByte, done float64) {
	fb, dn := h.firstByteErr, h.doneErr
	if ok {
		fb, dn = h.firstByteOK, h.doneOK
	}
	fb.Observe(firstByte)
	dn.Observe(done)
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	traces := telemetry.NewTraceBuffer(cfg.TraceCapacity)
	sinks := append(append([]telemetry.Sink{}, cfg.Sinks...), traces)
	s := &Server{
		cfg:         cfg,
		reg:         reg,
		rec:         telemetry.New(reg, sinks...).WithProcess(processName),
		traces:      traces,
		sinks:       sinks,
		mux:         http.NewServeMux(),
		start:       time.Now(),
		requests:    reg.Counter(MetricRequests, "requests received"),
		errs:        reg.Counter(MetricErrors, "requests answered with an error status"),
		bytesIn:     reg.Counter(MetricBytesIn, "request body bytes consumed"),
		bytesOut:    reg.Counter(MetricBytesOut, "response body bytes written"),
		patternsIn:  reg.Counter(MetricPatternsIn, "patterns compressed"),
		patternsOut: reg.Counter(MetricPatternsOut, "patterns decompressed"),
		latency:     reg.Histogram(MetricLatency, "request latency in seconds", latencyBuckets()),
		inFlightG:   reg.Gauge(MetricInFlight, "requests currently being served"),
	}
	compressSLO := &sloHists{
		firstByteOK:  reg.Histogram(MetricSLOCompressFirstByteOK, "compress time to first byte, successful requests", latencyBuckets()),
		firstByteErr: reg.Histogram(MetricSLOCompressFirstByteErr, "compress time to first byte, failed requests", latencyBuckets()),
		doneOK:       reg.Histogram(MetricSLOCompressDoneOK, "compress request duration, successful requests", latencyBuckets()),
		doneErr:      reg.Histogram(MetricSLOCompressDoneErr, "compress request duration, failed requests", latencyBuckets()),
	}
	decompressSLO := &sloHists{
		firstByteOK:  reg.Histogram(MetricSLODecompressFirstByteOK, "decompress time to first byte, successful requests", latencyBuckets()),
		firstByteErr: reg.Histogram(MetricSLODecompressFirstByteErr, "decompress time to first byte, failed requests", latencyBuckets()),
		doneOK:       reg.Histogram(MetricSLODecompressDoneOK, "decompress request duration, successful requests", latencyBuckets()),
		doneErr:      reg.Histogram(MetricSLODecompressDoneErr, "decompress request duration, failed requests", latencyBuckets()),
	}
	// The traceStart closures keep every StartSpan call site on a
	// package-const span name, the contract the metricname check audits.
	s.mux.HandleFunc(PathCompress, s.instrument(
		reg.Counter(MetricCompressRequests, "requests to compress"), compressSLO,
		func(ctx context.Context) (context.Context, *telemetry.TraceSpan) {
			return s.rec.StartSpan(ctx, SpanCompress)
		}, s.handleCompress))
	s.mux.HandleFunc(PathDecompress, s.instrument(
		reg.Counter(MetricDecompressRequests, "requests to decompress"), decompressSLO,
		func(ctx context.Context) (context.Context, *telemetry.TraceSpan) {
			return s.rec.StartSpan(ctx, SpanDecompress)
		}, s.handleDecompress))
	s.mux.HandleFunc(PathStats, s.instrument(
		reg.Counter(MetricStatsRequests, "requests to stats"), nil, nil, s.handleStats))
	s.mux.HandleFunc(PathHealth, s.instrument(
		reg.Counter(MetricHealthRequests, "requests to healthz"), nil, nil, s.handleHealth))
	s.mux.HandleFunc(PathMetrics, s.instrument(
		reg.Counter(MetricMetricsRequests, "requests to metrics"), nil, nil, s.handleMetrics))
	s.mux.HandleFunc(PathTraceRecent, s.instrument(
		reg.Counter(MetricTraceRequests, "requests to trace/recent"), nil, nil, s.handleTraceRecent))
	s.jobs = jobs.NewManager(jobs.Config{
		QueueDepth:    cfg.JobQueueDepth,
		Concurrent:    cfg.JobConcurrent,
		ResultTTL:     cfg.JobResultTTL,
		SweepInterval: cfg.JobSweepInterval,
		Quota:         cfg.JobQuota,
		Recorder:      s.rec,
	})
	s.mux.HandleFunc(PathJobsCompress, s.instrument(
		reg.Counter(MetricJobSubmitRequests, "async job submissions"), nil,
		func(ctx context.Context) (context.Context, *telemetry.TraceSpan) {
			return s.rec.StartSpan(ctx, SpanJobSubmit)
		}, s.handleJobSubmit))
	s.mux.HandleFunc(PathJobs, s.instrument(
		reg.Counter(MetricJobRequests, "job status/result/cancel operations"), nil, nil, s.handleJobs))
	s.dict = cfg.DictStore
	if s.dict == nil {
		// Open cannot fail without a Dir, so the error is structural-
		// impossible here; a private memory-only store still serves the
		// full API (minus persistence).
		s.dict, _ = dictstore.Open(dictstore.Config{Registry: reg})
		s.ownDict = true
	}
	s.dict.SetRecorder(s.rec)
	dictCounter := reg.Counter(MetricDictRequests, "dictionary store operations")
	s.mux.HandleFunc(PathDict, s.instrument(dictCounter, nil, nil, s.handleDictTrain))
	s.mux.HandleFunc(PathDictKey, s.instrument(dictCounter, nil, nil, s.handleDictKey))
	s.mux.HandleFunc("/", s.instrument(
		reg.Counter(MetricOtherRequests, "requests to unknown endpoints"), nil, nil,
		func(w http.ResponseWriter, r *http.Request) {
			s.writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no such endpoint %s", r.URL.Path))
		}))
	return s
}

// Registry returns the metrics registry the server records into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Traces returns the server's trace ring buffer.
func (s *Server) Traces() *telemetry.TraceBuffer { return s.traces }

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Jobs returns the async job manager, for tests and embedders that
// drive the tier directly.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// DictStore returns the shared-dictionary store the server serves
// /v1/dict from (the injected one, or the private memory-only store).
func (s *Server) DictStore() *dictstore.Store { return s.dict }

// Close releases the server's background resources: remaining async
// jobs are canceled and the job manager's goroutines stopped, and a
// privately opened dictionary store is closed (an injected one belongs
// to its owner). Serve calls it after a drain; handler-only embedders
// (httptest) must call it themselves.
func (s *Server) Close() {
	s.jobs.Close()
	if s.ownDict {
		_ = s.dict.Close() //nolint:errcheck // memory-only store; Close cannot fail
	}
}

// TraceHandler returns a standalone handler for the recent-traces
// endpoint, for mounting on a separate debug listener next to pprof.
func (s *Server) TraceHandler() http.Handler { return http.HandlerFunc(s.handleTraceRecent) }

// Serve accepts on ln until ctx is canceled, then drains: the listener
// closes immediately, in-flight requests get up to drainTimeout to
// complete, and Serve returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.reg.Gauge(MetricDrainStarted, "1 once graceful drain has begun").Set(1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close() //nolint:errcheck // best-effort hard stop after failed drain
		s.Close()
		return fmt.Errorf("server: drain: %w", err)
	}
	// In-flight requests are done; let admitted async jobs finish inside
	// the same drain budget, then stop the manager (canceling whatever
	// the budget did not cover).
	drainErr := s.jobs.Drain(shutdownCtx)
	s.Close()
	if drainErr != nil {
		return fmt.Errorf("server: drain: %w", drainErr)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// instrument wraps a handler with the request-scoped plumbing every
// endpoint shares: request/error/latency/in-flight accounting, request
// ID assignment and echo, trace-header propagation, and — for the
// data-plane endpoints — a server span plus SLO histograms. The
// per-endpoint counter is registered by the caller (New) under a
// package const, so every exported name stays statically auditable;
// traceStart (nil for untraced endpoints) is a closure whose StartSpan
// call site likewise names its span with a const.
func (s *Server) instrument(perEndpoint *telemetry.Counter, slo *sloHists,
	traceStart func(context.Context) (context.Context, *telemetry.TraceSpan), h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Inc()
		perEndpoint.Inc()
		s.inFlightG.Set(float64(s.inFlight.Add(1)))

		reqID := sanitizeRequestID(r.Header.Get(HeaderRequestID))
		if reqID == "" {
			reqID = telemetry.NewRequestID()
		}
		w.Header().Set(HeaderRequestID, reqID)
		ctx := telemetry.ContextWithRequestID(r.Context(), reqID)
		if sc, ok := telemetry.ParseSpanContext(r.Header.Get(HeaderTrace)); ok {
			ctx = telemetry.ContextWithSpan(ctx, sc)
		}
		var sp *telemetry.TraceSpan
		if traceStart != nil {
			ctx, sp = traceStart(ctx)
		}
		r = r.WithContext(ctx)

		cw := &countingResponseWriter{ResponseWriter: w, status: http.StatusOK, start: start}
		defer func() {
			s.inFlightG.Set(float64(s.inFlight.Add(-1)))
			elapsed := time.Since(start).Seconds()
			s.latency.Observe(elapsed)
			s.bytesOut.Add(cw.written)
			ok := cw.status < 400
			if !ok {
				s.errs.Inc()
			}
			if slo != nil {
				firstByte := elapsed
				if cw.firstByte > 0 {
					firstByte = cw.firstByte.Seconds()
				}
				slo.observe(ok, firstByte, elapsed)
			}
			sp.End(telemetry.F("status", cw.status), telemetry.F("endpoint", r.URL.Path))
		}()
		h(cw, r)
	}
}

// sanitizeRequestID accepts a caller-supplied request ID only when it
// is 1–64 bytes of [0-9A-Za-z._-]; anything else (including absence)
// makes the server assign its own. Request IDs land in log lines, span
// records and response headers, so the grammar is deliberately narrow.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// countingResponseWriter tracks status, bytes and time-to-first-byte
// for the metrics layer.
type countingResponseWriter struct {
	http.ResponseWriter
	status    int
	written   int64
	wrote     bool
	start     time.Time
	firstByte time.Duration // offset from start of the first header/body write
}

func (w *countingResponseWriter) markFirst() {
	if !w.wrote {
		w.wrote = true
		w.firstByte = time.Since(w.start)
	}
}

func (w *countingResponseWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
	}
	w.markFirst()
	w.ResponseWriter.WriteHeader(status)
}

func (w *countingResponseWriter) Write(p []byte) (int, error) {
	w.markFirst()
	n, err := w.ResponseWriter.Write(p)
	w.written += int64(n)
	return n, err
}

// Flush forwards streaming flushes when the underlying writer supports
// them.
func (w *countingResponseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeError sends the structured JSON error envelope, stamped with
// the request's ID so the failure joins to its server-side trace.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	detail := ErrorDetail{Code: code, Message: msg, RequestID: telemetry.RequestIDFromContext(r.Context())}
	_ = enc.Encode(ErrorBody{Error: detail}) //nolint:errcheck // response already committed
}

// mapError classifies a pipeline error onto a status + code.
func (s *Server) mapError(w http.ResponseWriter, r *http.Request, err error) {
	var maxBytes *http.MaxBytesError
	switch {
	case errors.As(err, &maxBytes):
		s.writeError(w, r, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", maxBytes.Limit))
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, r, http.StatusRequestTimeout, CodeTimeout, "request timed out")
	case errors.Is(err, context.Canceled):
		// The client went away; the status is best-effort.
		s.writeError(w, r, 499, CodeCanceled, "request canceled")
	default:
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
	}
}

// requireMethod enforces the endpoint's verb.
func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("%s requires %s", r.URL.Path, method))
		return false
	}
	return true
}

// checkDraining rejects new work once graceful drain has begun (only
// reachable over an already-open keep-alive connection).
func (s *Server) checkDraining(w http.ResponseWriter, r *http.Request) bool {
	if s.draining.Load() {
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return false
	}
	return true
}

// handleCompress reads cube text, compresses it under the query's
// configuration on the parallel pool, and streams back a wire
// container.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) || !s.checkDraining(w, r) {
		return
	}
	cfg, shard, err := ParseCompressQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	dictKey, haveDict, err := parseDictID(r.URL.Query())
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ts, err := lzwtc.ReadTestSet(body)
	if err != nil {
		s.mapError(w, r, err)
		return
	}
	s.bytesIn.Add(int64(approxCubeBytes(ts)))

	opts := lzwtc.BatchOptions{Workers: s.cfg.Workers, Policy: lzwtc.FailFast, Recorder: s.rec}
	if haveDict {
		// Warm-start path: resolve the stored dictionary (never train on
		// the compress endpoint — a missing key is the caller's signal to
		// train first) and emit a 'D'-frame container naming it.
		pre, ref, ok := s.resolveDictParam(ctx, w, r, dictKey)
		if !ok {
			return
		}
		sr, err := lzwtc.CompressShardedPreloaded(ctx, ts, cfg, pre, shard, opts)
		if err != nil {
			s.mapError(w, r, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(HeaderPatterns, strconv.Itoa(sr.Patterns))
		w.Header().Set(HeaderWidth, strconv.Itoa(sr.Width))
		w.Header().Set(HeaderRatio, strconv.FormatFloat(sr.Ratio(), 'g', -1, 64))
		w.Header().Set(HeaderShards, strconv.Itoa(len(sr.Shards)))
		w.Header().Set(HeaderDictKey, dictKey.String())
		if err := lzwtc.WriteWireDict(w, sr, ref); err != nil {
			return // headers already sent; truncation is detectable by the missing EOS
		}
		s.patternsIn.Add(int64(sr.Patterns))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if shard > 0 {
		sr, err := lzwtc.CompressSharded(ctx, ts, cfg, shard, opts)
		if err != nil {
			s.mapError(w, r, err)
			return
		}
		w.Header().Set(HeaderPatterns, strconv.Itoa(sr.Patterns))
		w.Header().Set(HeaderWidth, strconv.Itoa(sr.Width))
		w.Header().Set(HeaderRatio, strconv.FormatFloat(sr.Ratio(), 'g', -1, 64))
		w.Header().Set(HeaderShards, strconv.Itoa(len(sr.Shards)))
		if err := lzwtc.WriteWireShardedObserved(ctx, w, sr, s.rec); err != nil {
			return // headers already sent; the client sees a truncated (EOS-less) stream
		}
		s.patternsIn.Add(int64(sr.Patterns))
		return
	}

	results, err := lzwtc.CompressBatch(ctx, []lzwtc.BatchJob{{Name: "request", Set: ts, Cfg: cfg}}, opts)
	if err != nil {
		s.mapError(w, r, err)
		return
	}
	if results[0].Err != nil {
		s.mapError(w, r, results[0].Err)
		return
	}
	res := results[0].Result
	w.Header().Set(HeaderPatterns, strconv.Itoa(res.Patterns))
	w.Header().Set(HeaderWidth, strconv.Itoa(res.Width))
	w.Header().Set(HeaderRatio, strconv.FormatFloat(res.Ratio(), 'g', -1, 64))
	if err := res.WriteWireObserved(ctx, w, s.rec); err != nil {
		return // mid-stream failure: truncation is detectable by the missing EOS
	}
	s.patternsIn.Add(int64(res.Patterns))
}

// handleDecompress streams a wire container out of the body and returns
// the fully specified cube text.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) || !s.checkDraining(w, r) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	type result struct {
		ts  *lzwtc.TestSet
		err error
	}
	done := make(chan result, 1)
	go func() {
		// The dict-aware path degrades to plain DecompressWire for
		// containers without a 'D' frame, so every container decompresses
		// through one entry point.
		ts, err := lzwtc.DecompressWireDictObserved(ctx, body, s.dict, s.rec)
		done <- result{ts, err}
	}()
	select {
	case <-ctx.Done():
		s.mapError(w, r, ctx.Err())
		return
	case res := <-done:
		if res.err != nil {
			s.mapError(w, r, res.err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set(HeaderPatterns, strconv.Itoa(len(res.ts.Cubes)))
		w.Header().Set(HeaderWidth, strconv.Itoa(res.ts.Width))
		if err := res.ts.WriteCubes(w); err != nil {
			return
		}
		s.patternsOut.Add(int64(len(res.ts.Cubes)))
	}
}

// handleStats serves the JSON counter document.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	snap := s.reg.Snapshot()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inFlight.Load(),
		Requests:      map[string]int64{},
	}
	resp.Errors = snap.CounterValue(MetricErrors)
	resp.BytesIn = snap.CounterValue(MetricBytesIn)
	resp.BytesOut = snap.CounterValue(MetricBytesOut)
	resp.PatternsCompressed = snap.CounterValue(MetricPatternsIn)
	resp.PatternsDecompressed = snap.CounterValue(MetricPatternsOut)
	resp.DictPoolRecycles = snap.CounterValue(core.MetricDictPoolRecycles)
	resp.DictPoolMisses = snap.CounterValue(core.MetricDictPoolMisses)
	resp.Requests["total"] = snap.CounterValue(MetricRequests)
	for _, c := range snap.Counters {
		if name, ok := endpointOf(c.Name); ok {
			resp.Requests[name] = c.Value
		}
	}
	resp.Jobs = JobsStats{
		Submitted: snap.CounterValue(jobs.MetricJobsSubmitted),
		Completed: snap.CounterValue(jobs.MetricJobsCompleted),
		Failed:    snap.CounterValue(jobs.MetricJobsFailed),
		Canceled:  snap.CounterValue(jobs.MetricJobsCanceled),
		Expired:   snap.CounterValue(jobs.MetricJobsExpired),
		Rejected:  snap.CounterValue(jobs.MetricJobsRejected),
	}
	resp.Jobs.Queued, resp.Jobs.Running = s.jobs.Counts()
	ds := s.dict.Stats()
	resp.DictStore = DictStoreStats{
		Entries:     ds.Entries,
		MemBytes:    ds.MemBytes,
		DiskEntries: ds.DiskEntries,
		DiskBytes:   ds.DiskBytes,
		Hits:        ds.Hits,
		Misses:      ds.Misses,
		Evictions:   ds.Evictions,
		Trains:      ds.Trains,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp) //nolint:errcheck // response already committed
}

// endpointOf extracts the endpoint from a per-endpoint request counter
// name, e.g. lzwtcd_compress_requests_total -> compress.
func endpointOf(metric string) (string, bool) {
	const prefix, suffix = "lzwtcd_", "_requests_total"
	if len(metric) > len(prefix)+len(suffix) &&
		metric[:len(prefix)] == prefix && metric[len(metric)-len(suffix):] == suffix {
		return metric[len(prefix) : len(metric)-len(suffix)], true
	}
	return "", false
}

// handleHealth serves liveness.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	fmt.Fprintf(w, "{\"status\":%q}\n", status)
}

// handleTraceRecent serves the ring buffer's most recent traces as
// JSON, newest first. ?n bounds the count (default and cap keep the
// response small; the buffer itself is already capacity-bounded).
func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 || p > 1000 {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("parameter n=%q must be an integer in [1,1000]", v))
			return
		}
		n = p
	}
	resp := TraceRecentResponse{Traces: s.traces.Recent(n)}
	if resp.Traces == nil {
		resp.Traces = []telemetry.TraceRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp) //nolint:errcheck // response already committed
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.Snapshot().WritePrometheus(w) //nolint:errcheck // response already committed
}

// approxCubeBytes estimates the text size of a cube set (width+1 bytes
// per pattern), the quantity the bytes-in counter tracks for compress
// requests whose body was consumed by the streaming parser.
func approxCubeBytes(ts *lzwtc.TestSet) int {
	return len(ts.Cubes) * (ts.Width + 1)
}
