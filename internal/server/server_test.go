// End-to-end tests: a real lzwtcd service (httptest or a drained
// net.Listener) driven through the client package over the committed
// conformance corpus. The package is server_test because the client
// imports internal/server for the API constants.
package server_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lzwtc"
	"lzwtc/client"
	"lzwtc/internal/server"
)

// corpusCases mirrors the conformance corpus table: every committed
// .cubes file with the Config it is compressed under.
func corpusCases() map[string]lzwtc.Config {
	return map[string]lzwtc.Config{
		"cc2-minimal-dict":       {CharBits: 2, DictSize: 4, EntryBits: 8, Full: lzwtc.FullReset},
		"cc2-reset":              {CharBits: 2, DictSize: 32, EntryBits: 8, Full: lzwtc.FullReset},
		"cc2-freeze":             {CharBits: 2, DictSize: 32, EntryBits: 8},
		"cc4-freeze":             {CharBits: 4, DictSize: 128, EntryBits: 16},
		"cc4-reset":              {CharBits: 4, DictSize: 128, EntryBits: 16, Full: lzwtc.FullReset},
		"cc4-edge-dict":          {CharBits: 4, DictSize: 16, EntryBits: 16},
		"cc8-default":            {CharBits: 8, DictSize: 1024, EntryBits: 64},
		"cc8-edge-dict":          {CharBits: 8, DictSize: 256, EntryBits: 64, Full: lzwtc.FullReset},
		"all-x":                  {CharBits: 4, DictSize: 64, EntryBits: 16},
		"no-x":                   {CharBits: 4, DictSize: 64, EntryBits: 16},
		"fill-one-tie-newest":    {CharBits: 4, DictSize: 64, EntryBits: 16, Fill: lzwtc.FillOne, Tie: lzwtc.TieNewest},
		"fill-repeat-tie-widest": {CharBits: 4, DictSize: 64, EntryBits: 16, Fill: lzwtc.FillRepeat, Tie: lzwtc.TieWidest},
		"unaligned-width":        {CharBits: 8, DictSize: 512, EntryBits: 32},
		"paper-slice":            {CharBits: 7, DictSize: 1024, EntryBits: 63},
	}
}

func readCorpusSet(t *testing.T, name string) *lzwtc.TestSet {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", "conformance", name+".cubes")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts, err := lzwtc.ReadTestSet(f)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// startService hosts a fresh server on httptest and returns a client
// for it.
func startService(t *testing.T, cfg server.Config) (*client.Client, *server.Server) {
	t.Helper()
	srv := server.New(cfg)
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return client.New(hs.URL, client.Options{Retries: 0}), srv
}

// TestServiceConformanceE2E round-trips every conformance case through
// a hosted service: the remote container must be byte-identical to an
// in-process Compress+EncodeWire, and the remote decompression must be
// byte-identical to the in-process one.
func TestServiceConformanceE2E(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	for name, cfg := range corpusCases() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			ts := readCorpusSet(t, name)

			container, err := c.Compress(ctx, ts, cfg, client.CompressOptions{})
			if err != nil {
				t.Fatalf("remote compress: %v", err)
			}
			res, err := lzwtc.Compress(ts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := res.EncodeWire()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(container, want) {
				t.Fatalf("remote container differs from in-process Compress (%d vs %d bytes)",
					len(container), len(want))
			}

			remoteSet, err := c.Decompress(ctx, container)
			if err != nil {
				t.Fatalf("remote decompress: %v", err)
			}
			localSet, err := lzwtc.Decompress(res)
			if err != nil {
				t.Fatal(err)
			}
			var rb, lb bytes.Buffer
			if err := remoteSet.WriteCubes(&rb); err != nil {
				t.Fatal(err)
			}
			if err := localSet.WriteCubes(&lb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rb.Bytes(), lb.Bytes()) {
				t.Fatal("remote decompression differs from in-process Decompress")
			}
		})
	}
}

// TestServiceShardedE2E pins the sharded path: the remote container is
// byte-identical to the in-process sharded pipeline and decompresses to
// the same set.
func TestServiceShardedE2E(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc4-reset")
	cfg := corpusCases()["cc4-reset"]

	container, err := c.Compress(ctx, ts, cfg, client.CompressOptions{ShardPatterns: 4})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := lzwtc.CompressSharded(ctx, ts, cfg, 4, lzwtc.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := lzwtc.WriteWireSharded(&want, sr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(container, want.Bytes()) {
		t.Fatalf("remote sharded container differs (%d vs %d bytes)", len(container), want.Len())
	}
	back, err := c.Decompress(ctx, container)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cubes) != len(ts.Cubes) || back.Width != ts.Width {
		t.Fatalf("sharded round trip geometry: got %dx%d, want %dx%d",
			len(back.Cubes), back.Width, len(ts.Cubes), ts.Width)
	}
}

// TestServiceRejectsOversizedBody pins the 413 path end to end.
func TestServiceRejectsOversizedBody(t *testing.T) {
	c, _ := startService(t, server.Config{MaxBodyBytes: 64})
	ts := readCorpusSet(t, "cc8-default")
	_, err := c.Compress(context.Background(), ts, corpusCases()["cc8-default"], client.CompressOptions{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Status != http.StatusRequestEntityTooLarge || apiErr.Code != server.CodeBodyTooLarge {
		t.Fatalf("want 413 %s, got %d %s", server.CodeBodyTooLarge, apiErr.Status, apiErr.Code)
	}
}

// TestServiceRequestTimeout pins the 408 path: an already-expired
// request deadline surfaces as a structured timeout error.
func TestServiceRequestTimeout(t *testing.T) {
	c, _ := startService(t, server.Config{RequestTimeout: time.Nanosecond})
	ts := readCorpusSet(t, "cc4-freeze")
	_, err := c.Compress(context.Background(), ts, corpusCases()["cc4-freeze"], client.CompressOptions{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Status != http.StatusRequestTimeout || apiErr.Code != server.CodeTimeout {
		t.Fatalf("want 408 %s, got %d %s", server.CodeTimeout, apiErr.Status, apiErr.Code)
	}
}

// TestServiceClientCancellation: a canceled context aborts the call
// with context.Canceled, not a hang or a mangled response.
func TestServiceClientCancellation(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := readCorpusSet(t, "cc4-freeze")
	_, err := c.Compress(ctx, ts, corpusCases()["cc4-freeze"], client.CompressOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestServiceBadRequests pins the structured 400/404/405 envelopes.
func TestServiceBadRequests(t *testing.T) {
	c, srv := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")

	if _, err := c.Compress(ctx, ts, lzwtc.Config{CharBits: 99, DictSize: 4}, client.CompressOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + server.PathCompress)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET compress: want 405, got %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404, got %d", resp.StatusCode)
	}

	// Corrupt container -> structured 400, not a crash.
	if _, err := c.Decompress(ctx, []byte("not a container")); err == nil {
		t.Fatal("corrupt container accepted")
	}
}

// TestServiceStatsAndMetrics drives known traffic and asserts the
// counters observable over /v1/stats and /metrics match it.
func TestServiceStatsAndMetrics(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]

	const n = 3
	var container []byte
	for i := 0; i < n; i++ {
		var err error
		container, err = c.Compress(ctx, ts, cfg, client.CompressOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Decompress(ctx, container); err != nil {
		t.Fatal(err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests["compress"] != n {
		t.Fatalf("compress requests: got %d, want %d", stats.Requests["compress"], n)
	}
	if stats.Requests["decompress"] != 1 {
		t.Fatalf("decompress requests: got %d, want 1", stats.Requests["decompress"])
	}
	if stats.PatternsCompressed != int64(n*len(ts.Cubes)) {
		t.Fatalf("patterns compressed: got %d, want %d", stats.PatternsCompressed, n*len(ts.Cubes))
	}
	if stats.PatternsDecompressed != int64(len(ts.Cubes)) {
		t.Fatalf("patterns decompressed: got %d, want %d", stats.PatternsDecompressed, len(ts.Cubes))
	}
	if stats.BytesOut == 0 || stats.UptimeSeconds < 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Every metric New registers must be present in the exposition: the
	// lzwtcvet metricname check cross-references this list against the
	// names the server package registers, so /metrics and dashboards
	// cannot drift apart silently.
	for _, want := range []string{
		server.MetricRequests, server.MetricErrors, server.MetricLatency,
		server.MetricInFlight, server.MetricBytesIn, server.MetricBytesOut,
		server.MetricPatternsIn, server.MetricPatternsOut,
		server.MetricCompressRequests, server.MetricDecompressRequests,
		server.MetricStatsRequests, server.MetricHealthRequests,
		server.MetricMetricsRequests, server.MetricOtherRequests,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics exposition missing %s", want)
		}
	}
}

// TestServiceRetryBackoff: the client retries gateway-class failures
// and gives up cleanly when they persist.
func TestServiceRetryBackoff(t *testing.T) {
	srv := server.New(server.Config{})
	t.Cleanup(srv.Close)
	var calls atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	hs := httptest.NewServer(flaky)
	defer hs.Close()

	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]
	c := client.New(hs.URL, client.Options{Retries: 2, Backoff: time.Millisecond})
	if _, err := c.Compress(context.Background(), ts, cfg, client.CompressOptions{}); err != nil {
		t.Fatalf("retries exhausted too early: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("want 3 attempts, got %d", got)
	}

	calls.Store(-1000) // stay in the failing window for all attempts
	c2 := client.New(hs.URL, client.Options{Retries: 1, Backoff: time.Millisecond})
	if _, err := c2.Compress(context.Background(), ts, cfg, client.CompressOptions{}); err == nil {
		t.Fatal("persistent 503 did not surface")
	}
}

// TestServiceGracefulDrain runs Serve on a real listener, parks a
// request mid-body, cancels the serve context, and asserts the
// in-flight request still completes before Serve returns cleanly.
func TestServiceGracefulDrain(t *testing.T) {
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln, 10*time.Second) }()

	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]
	var cubes bytes.Buffer
	if err := ts.WriteCubes(&cubes); err != nil {
		t.Fatal(err)
	}
	body := cubes.Bytes()

	// Send the request with a body we control: first half now, second
	// half only after the drain has started, so the request is provably
	// in flight across the cancellation.
	pr, pw := io.Pipe()
	url := "http://" + ln.Addr().String() + server.PathCompress + "?" +
		server.EncodeCompressQuery(cfg, 0).Encode()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		t.Fatal(err)
	}
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	if _, err := pw.Write(body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}

	// Wait until the handler is provably in flight (the in-flight gauge
	// is set before the handler body runs; with the request body still
	// open the handler can only be parked in its body read) before
	// starting the drain.
	deadline := time.Now().Add(5 * time.Second)
	for inFlight := false; !inFlight; {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		for _, g := range srv.Registry().Snapshot().Gauges {
			if g.Name == server.MetricInFlight && g.Value >= 1 {
				inFlight = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the handler pass its draining check

	cancel() // drain starts with the request parked mid-body
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned with a request in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	if _, err := pw.Write(body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-errCh:
		t.Fatalf("in-flight request failed during drain: %v", err)
	case resp := <-respCh:
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight request status %d during drain", resp.StatusCode)
		}
		container, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lzwtc.Compress(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := res.EncodeWire()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(container, want) {
			t.Fatal("container served during drain differs from in-process result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve did not drain cleanly: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// The listener is closed: new connections must be refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}

	// The drain marker gauge must have been exported the moment the
	// drain began.
	drained := false
	for _, g := range srv.Registry().Snapshot().Gauges {
		if g.Name == server.MetricDrainStarted && g.Value == 1 {
			drained = true
		}
	}
	if !drained {
		t.Fatalf("%s gauge not set after drain", server.MetricDrainStarted)
	}
}
