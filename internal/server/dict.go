package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"lzwtc"
	"lzwtc/internal/core"
	"lzwtc/internal/dictstore"
)

// Shared-dictionary endpoints: PUT /v1/dict trains a dictionary from
// cube text (idempotently — the store's content addressing plus
// singleflight make a repeated training a cache hit), and
// /v1/dict/{key} fetches, uploads or evicts one LZWD blob. The dictid
// query parameter on the compress endpoints resolves through the same
// store, so `dict push` from one client warms every later compression.

// maxDictBlobBytes bounds an uploaded LZWD blob before decoding.
const maxDictBlobBytes = 16 << 20

// parseDictID extracts the optional dictid parameter.
func parseDictID(v url.Values) (dictstore.Key, bool, error) {
	s := v.Get(ParamDictID)
	if s == "" {
		return dictstore.Key{}, false, nil
	}
	key, err := dictstore.ParseKey(s)
	if err != nil {
		return dictstore.Key{}, false, fmt.Errorf("server: parameter %s: %w", ParamDictID, err)
	}
	return key, true, nil
}

// resolveDictParam answers the preload and container reference for a
// request's dictid, writing the error response itself on failure.
func (s *Server) resolveDictParam(ctx context.Context, w http.ResponseWriter, r *http.Request, key dictstore.Key) (*core.Preload, lzwtc.DictRef, bool) {
	ent, err := s.dict.Resolve(ctx, key)
	if err != nil {
		if errors.Is(err, dictstore.ErrNotFound) {
			s.writeError(w, r, http.StatusNotFound, CodeDictNotFound,
				fmt.Sprintf("no stored dictionary %s; train or push it first", key))
		} else {
			s.writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		return nil, lzwtc.DictRef{}, false
	}
	return ent.Pre, lzwtc.DictEntryRef(ent), true
}

// setDictHeaders stamps the dictionary identity onto a response.
func setDictHeaders(w http.ResponseWriter, ent *dictstore.Entry) {
	w.Header().Set(HeaderDictKey, ent.Key.String())
	w.Header().Set(HeaderDictDigest, ent.Digest.String())
}

// handleDictTrain serves PUT /v1/dict: cube text in, trained (or
// already-stored) dictionary identity out. The key derivation is the
// same DictKeyFor the CLI uses, so training here and training locally
// agree on the address.
func (s *Server) handleDictTrain(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPut) || !s.checkDraining(w, r) {
		return
	}
	cfg, _, err := ParseCompressQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if cfg.Full == core.FullReset {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest,
			"server: full=reset cannot be used with preloaded dictionaries")
		return
	}
	maxEntries := 0
	if v := r.URL.Query().Get(ParamEntries); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("server: parameter %s=%q must be a non-negative integer", ParamEntries, v))
			return
		}
		maxEntries = n
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ts, err := lzwtc.ReadTestSet(body)
	if err != nil {
		s.mapError(w, r, err)
		return
	}
	s.bytesIn.Add(int64(approxCubeBytes(ts)))

	key := lzwtc.DictKeyFor(ts, cfg)
	ent, src, err := s.dict.GetOrTrain(ctx, key, cfg, func(context.Context) (*core.Preload, error) {
		return lzwtc.Train(ts, cfg, maxEntries)
	})
	if err != nil {
		s.mapError(w, r, err)
		return
	}
	setDictHeaders(w, ent)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, DictResponse{
		Key:       ent.Key.String(),
		Digest:    ent.Digest.String(),
		Entries:   ent.Pre.Entries(),
		BlobBytes: ent.BlobBytes,
		Source:    src.String(),
	})
}

// handleDictKey dispatches the per-dictionary operations:
//
//	GET    /v1/dict/{key}  LZWD blob (canonical encoding)
//	PUT    /v1/dict/{key}  upload a blob (validated + re-encoded)
//	DELETE /v1/dict/{key}  evict from memory and disk
func (s *Server) handleDictKey(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, PathDictKey)
	key, err := dictstore.ParseKey(rest)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("malformed dictionary key %q: %v", rest, err))
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleDictFetch(w, r, key)
	case http.MethodPut:
		s.handleDictUpload(w, r, key)
	case http.MethodDelete:
		s.handleDictDelete(w, r, key)
	default:
		w.Header().Set("Allow", "GET, PUT, DELETE")
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("%s requires GET, PUT or DELETE", r.URL.Path))
	}
}

func (s *Server) handleDictFetch(w http.ResponseWriter, r *http.Request, key dictstore.Key) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	blob, ent, err := s.dict.Blob(ctx, key)
	if err != nil {
		if errors.Is(err, dictstore.ErrNotFound) {
			s.writeError(w, r, http.StatusNotFound, CodeDictNotFound,
				fmt.Sprintf("no stored dictionary %s", key))
		} else {
			s.writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		return
	}
	setDictHeaders(w, ent)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	if _, err := w.Write(blob); err != nil {
		return // mid-stream failure; the blob CRCs make truncation evident
	}
}

func (s *Server) handleDictUpload(w http.ResponseWriter, r *http.Request, key dictstore.Key) {
	if !s.checkDraining(w, r) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxDictBlobBytes)
	blob, err := io.ReadAll(body)
	if err != nil {
		s.mapError(w, r, err)
		return
	}
	s.bytesIn.Add(int64(len(blob)))
	ent, err := s.dict.PutBlob(key, blob)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeDictInvalid,
			fmt.Sprintf("rejected dictionary blob: %v", err))
		return
	}
	setDictHeaders(w, ent)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, DictResponse{
		Key:       ent.Key.String(),
		Digest:    ent.Digest.String(),
		Entries:   ent.Pre.Entries(),
		BlobBytes: ent.BlobBytes,
	})
}

func (s *Server) handleDictDelete(w http.ResponseWriter, r *http.Request, key dictstore.Key) {
	removed, err := s.dict.Delete(key)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	if !removed {
		s.writeError(w, r, http.StatusNotFound, CodeDictNotFound,
			fmt.Sprintf("no stored dictionary %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]string{"deleted": key.String()})
}
