package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"lzwtc"
	"lzwtc/internal/jobs"
	"lzwtc/internal/telemetry"
)

// Async job tier: POST /v1/jobs/compress admits work onto the
// internal/jobs manager and answers 202 immediately; the per-job
// endpoints under /v1/jobs/{id} serve status, the result container,
// and cancellation. Tenancy comes from X-Api-Key (absent keys share
// the anonymous tenant) and every quota or queue rejection is a 429
// with a Retry-After estimate from the manager's backpressure math.

// anonTenant is the quota bucket for requests without an API key.
const anonTenant = "anonymous"

// tenantOf resolves the request's quota tenant. API keys share the
// request-ID grammar (1–64 bytes of [0-9A-Za-z._-]); anything else is
// treated as absent rather than becoming an unbounded label.
func tenantOf(r *http.Request) string {
	if key := sanitizeRequestID(r.Header.Get(HeaderAPIKey)); key != "" {
		return key
	}
	return anonTenant
}

// writeRetryError is writeError plus the Retry-After header, the
// backpressure contract every 429 (and draining 503) carries.
func (s *Server) writeRetryError(w http.ResponseWriter, r *http.Request, status int, code, msg string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set(HeaderRetryAfter, strconv.Itoa(retryAfter))
	}
	s.writeError(w, r, status, code, msg)
}

// retrySeconds rounds a Retry-After duration up to whole seconds,
// never below 1 (a zero header would invite an immediate retry storm).
func retrySeconds(d int64) int {
	const us = 1e6
	secs := (d + us - 1) / us
	if secs < 1 {
		secs = 1
	}
	return int(secs)
}

// handleJobSubmit admits one asynchronous compression: the body and
// query are validated synchronously (a malformed request fails now,
// not inside a job the caller would have to poll), then the compiled
// run closure is queued and the job's initial snapshot returned as
// 202 with a Location header.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) || !s.checkDraining(w, r) {
		return
	}
	cfg, shard, err := ParseCompressQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	dictKey, haveDict, err := parseDictID(r.URL.Query())
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ts, err := lzwtc.ReadTestSet(body)
	if err != nil {
		s.mapError(w, r, err)
		return
	}
	s.bytesIn.Add(int64(approxCubeBytes(ts)))

	// A dict-referencing submit resolves the dictionary now, not inside
	// the job: a dangling dictid fails the submission synchronously, the
	// same eager-validation contract the query and body already follow.
	var pre *lzwtc.Preload
	var ref lzwtc.DictRef
	if haveDict {
		var ok bool
		if pre, ref, ok = s.resolveDictParam(r.Context(), w, r, dictKey); !ok {
			return
		}
	}

	tenant := tenantOf(r)
	st, err := s.jobs.Submit(r.Context(), tenant, s.compressJob(ts, cfg, shard, pre, ref))
	if err != nil {
		var rej *jobs.RejectError
		switch {
		case errors.As(err, &rej):
			s.writeRetryError(w, r, http.StatusTooManyRequests, rej.Reason,
				fmt.Sprintf("job submission rejected: %s (tenant %s)", rej.Reason, rej.Tenant),
				retrySeconds(rej.RetryAfter.Microseconds()))
		case errors.Is(err, jobs.ErrDraining):
			s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		default:
			s.writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", PathJobs+st.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, JobStatusFrom(st))
}

// compressJob compiles one admitted request into the manager's run
// function. The job's recorder is rebuilt per run over the server's
// registry, the server's sinks, and the job's Progress — so pool
// telemetry, trace spans and the frames_done feed all ride the same
// event stream the synchronous path uses.
func (s *Server) compressJob(ts *lzwtc.TestSet, cfg lzwtc.Config, shard int, pre *lzwtc.Preload, ref lzwtc.DictRef) jobs.RunFunc {
	return func(ctx context.Context, pr *jobs.Progress) (*jobs.Payload, error) {
		rec := telemetry.New(s.reg, append(append([]telemetry.Sink{}, s.sinks...), pr)...).
			WithProcess(processName)
		opts := lzwtc.BatchOptions{Workers: s.cfg.Workers, Policy: lzwtc.FailFast, Recorder: rec}
		var buf bytes.Buffer
		if pre != nil {
			// Dictionary-warmed job: the result is always the 'D'-frame
			// container form, sharded or not.
			pr.SetTotal(shardTotal(len(ts.Cubes), shard))
			sr, err := lzwtc.CompressShardedPreloaded(ctx, ts, cfg, pre, shard, opts)
			if err != nil {
				return nil, err
			}
			if err := lzwtc.WriteWireDict(&buf, sr, ref); err != nil {
				return nil, err
			}
			s.patternsIn.Add(int64(sr.Patterns))
			return &jobs.Payload{Data: buf.Bytes(), Patterns: sr.Patterns, Ratio: sr.Ratio()}, nil
		}
		if shard > 0 {
			pr.SetTotal((len(ts.Cubes) + shard - 1) / shard)
			sr, err := lzwtc.CompressSharded(ctx, ts, cfg, shard, opts)
			if err != nil {
				return nil, err
			}
			if err := lzwtc.WriteWireShardedObserved(ctx, &buf, sr, rec); err != nil {
				return nil, err
			}
			s.patternsIn.Add(int64(sr.Patterns))
			return &jobs.Payload{Data: buf.Bytes(), Patterns: sr.Patterns, Ratio: sr.Ratio()}, nil
		}
		pr.SetTotal(1)
		results, err := lzwtc.CompressBatch(ctx, []lzwtc.BatchJob{{Name: "job", Set: ts, Cfg: cfg}}, opts)
		if err != nil {
			return nil, err
		}
		if results[0].Err != nil {
			return nil, results[0].Err
		}
		res := results[0].Result
		if err := res.WriteWireObserved(ctx, &buf, rec); err != nil {
			return nil, err
		}
		s.patternsIn.Add(int64(res.Patterns))
		return &jobs.Payload{Data: buf.Bytes(), Patterns: res.Patterns, Ratio: res.Ratio()}, nil
	}
}

// shardTotal is the expected frame count for the progress feed: one
// frame per shard group, or a single frame when unsharded.
func shardTotal(patterns, shard int) int {
	if shard <= 0 {
		return 1
	}
	return (patterns + shard - 1) / shard
}

// handleJobs dispatches the per-job endpoints:
//
//	GET    /v1/jobs/{id}         status document
//	GET    /v1/jobs/{id}/result  wire container (once done)
//	DELETE /v1/jobs/{id}         cancel
//
// A job belonging to another tenant answers exactly like an unknown
// ID, so job identifiers do not leak across API keys.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, PathJobs)
	wantResult := false
	if id, ok := strings.CutSuffix(rest, JobResultSuffix); ok {
		rest, wantResult = id, true
	}
	id := sanitizeRequestID(rest)
	if id == "" {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("malformed job id %q", rest))
		return
	}
	switch {
	case r.Method == http.MethodGet && wantResult:
		s.handleJobResult(w, r, id)
	case r.Method == http.MethodGet:
		s.handleJobStatus(w, r, id)
	case r.Method == http.MethodDelete && !wantResult:
		s.handleJobCancel(w, r, id)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("%s requires GET or DELETE", r.URL.Path))
	}
}

// mapJobLookupError renders the two typed lookup failures.
func (s *Server) mapJobLookupError(w http.ResponseWriter, r *http.Request, id string, err error) {
	if errors.Is(err, jobs.ErrExpired) {
		s.writeError(w, r, http.StatusNotFound, CodeJobExpired,
			fmt.Sprintf("job %s expired (result TTL passed)", id))
		return
	}
	s.writeError(w, r, http.StatusNotFound, CodeJobNotFound, fmt.Sprintf("no such job %s", id))
}

// jobForTenant looks a job up and hides other tenants' jobs behind the
// not-found answer.
func (s *Server) jobForTenant(r *http.Request, id string) (jobs.Status, error) {
	st, err := s.jobs.Get(id)
	if err != nil {
		return jobs.Status{}, err
	}
	if st.Tenant != tenantOf(r) {
		return jobs.Status{}, jobs.ErrNotFound
	}
	return st, nil
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request, id string) {
	st, err := s.jobForTenant(r, id)
	if err != nil {
		s.mapJobLookupError(w, r, id, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, JobStatusFrom(st))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, id string) {
	if _, err := s.jobForTenant(r, id); err != nil {
		s.mapJobLookupError(w, r, id, err)
		return
	}
	payload, st, err := s.jobs.Result(id)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(HeaderPatterns, strconv.Itoa(st.Patterns))
		w.Header().Set(HeaderRatio, strconv.FormatFloat(st.Ratio, 'g', -1, 64))
		if _, err := w.Write(payload.Data); err != nil {
			return // mid-stream failure; truncation detectable by the wire CRCs
		}
	case errors.Is(err, jobs.ErrNotDone):
		// Not a failure: the caller polled too early. Retry-After keeps
		// naive pollers off the hot loop.
		s.writeRetryError(w, r, http.StatusConflict, CodeJobNotDone,
			fmt.Sprintf("job %s is %s; poll %s%s until done", id, st.State, PathJobs, id), 1)
	case errors.Is(err, context.Canceled):
		s.writeError(w, r, http.StatusConflict, CodeJobCanceled,
			fmt.Sprintf("job %s was canceled", id))
	case errors.Is(err, jobs.ErrNotFound), errors.Is(err, jobs.ErrExpired):
		s.mapJobLookupError(w, r, id, err)
	default:
		s.writeError(w, r, http.StatusConflict, CodeJobFailed,
			fmt.Sprintf("job %s failed: %v", id, err))
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request, id string) {
	if _, err := s.jobForTenant(r, id); err != nil {
		s.mapJobLookupError(w, r, id, err)
		return
	}
	st, err := s.jobs.Cancel(id)
	if err != nil {
		s.mapJobLookupError(w, r, id, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, JobStatusFrom(st))
}

// writeJSON encodes one response document; the response is already
// committed, so encoding errors cannot be reported to the client.
func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //nolint:errcheck // response already committed
}
