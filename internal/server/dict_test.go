// Shared-dictionary endpoint tests: the /v1/dict lifecycle over HTTP,
// and the differential guarantee that compress-by-dictionary-ID — sync,
// sharded and async-job — is byte-identical to the in-process preloaded
// path for every conformance-corpus case.
package server_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"lzwtc"
	"lzwtc/client"
	"lzwtc/internal/jobs"
	"lzwtc/internal/server"
)

// dictCorpusCases is corpusCases with the dictionary tier's contract
// applied: FullReset cannot carry a preload, so those corpus entries
// run under FullFreeze.
func dictCorpusCases() map[string]lzwtc.Config {
	out := map[string]lzwtc.Config{}
	for name, cfg := range corpusCases() {
		if cfg.Full == lzwtc.FullReset {
			cfg.Full = lzwtc.FullFreeze
		}
		out[name] = cfg
	}
	return out
}

// TestDictHTTPLifecycle walks one dictionary through every endpoint:
// train (fresh then cached), fetch, delete, miss, re-upload.
func TestDictHTTPLifecycle(t *testing.T) {
	c, srv := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc4-freeze")
	cfg := dictCorpusCases()["cc4-freeze"]

	info, err := c.TrainDict(ctx, ts, cfg, 0)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if info.Source != "trained" {
		t.Fatalf("first training resolved from %q, want trained", info.Source)
	}
	if want := lzwtc.DictKeyFor(ts, cfg).String(); info.Key != want {
		t.Fatalf("server derived key %s, client derives %s — content addressing diverged", info.Key, want)
	}
	if info.Entries == 0 || info.BlobBytes == 0 {
		t.Fatalf("trained dictionary is empty: %+v", info)
	}

	// The same corpus trains idempotently: second call is a cache hit.
	again, err := c.TrainDict(ctx, ts, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "mem" || again.Digest != info.Digest {
		t.Fatalf("repeat training: source %q digest match %v", again.Source, again.Digest == info.Digest)
	}

	blob, err := c.FetchDict(ctx, info.Key)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	gotCfg, pre, err := lzwtc.DecodeDictBlob(blob)
	if err != nil {
		t.Fatalf("fetched blob does not decode: %v", err)
	}
	if gotCfg != cfg || pre.Entries() != info.Entries {
		t.Fatalf("fetched blob decodes to cfg %+v / %d entries, want %+v / %d",
			gotCfg, pre.Entries(), cfg, info.Entries)
	}

	if err := c.DeleteDict(ctx, info.Key); err != nil {
		t.Fatalf("delete: %v", err)
	}
	var apiErr *client.APIError
	if _, err := c.FetchDict(ctx, info.Key); !errors.As(err, &apiErr) || apiErr.Code != server.CodeDictNotFound {
		t.Fatalf("fetch after delete: got %v, want %s", err, server.CodeDictNotFound)
	}
	if err := c.DeleteDict(ctx, info.Key); !errors.As(err, &apiErr) || apiErr.Code != server.CodeDictNotFound {
		t.Fatalf("double delete: got %v, want %s", err, server.CodeDictNotFound)
	}

	// Push restores the exact dictionary from the blob alone.
	pushed, err := c.PushDict(ctx, info.Key, blob)
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if pushed.Digest != info.Digest || pushed.Entries != info.Entries {
		t.Fatalf("pushed dictionary %+v does not match the trained one %+v", pushed, info)
	}

	// Every dictionary operation rode the dedicated endpoint counter.
	if n := srv.Registry().Snapshot().CounterValue(server.MetricDictRequests); n < 6 {
		t.Fatalf("%s = %d after 7 dictionary calls", server.MetricDictRequests, n)
	}
}

// TestDictHTTPRejects covers the endpoint's input validation: garbage
// keys, blobs whose digest does not match their claimed key, and
// training under a reset policy.
func TestDictHTTPRejects(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc4-freeze")
	cfg := dictCorpusCases()["cc4-freeze"]

	var apiErr *client.APIError
	if _, err := c.FetchDict(ctx, "not-a-key"); !errors.As(err, &apiErr) || apiErr.Code != server.CodeBadRequest {
		t.Fatalf("malformed key: got %v, want %s", err, server.CodeBadRequest)
	}

	resetCfg := cfg
	resetCfg.Full = lzwtc.FullReset
	if _, err := c.TrainDict(ctx, ts, resetCfg, 0); !errors.As(err, &apiErr) || apiErr.Code != server.CodeBadRequest {
		t.Fatalf("full=reset training: got %v, want %s", err, server.CodeBadRequest)
	}

	// The key is an opaque handle (only the trainer can derive it from
	// the corpus), so a push under any key is accepted — but the blob's
	// content digest travels with it, which is what 'D'-frame resolution
	// verifies.
	info, err := c.TrainDict(ctx, ts, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.FetchDict(ctx, info.Key)
	if err != nil {
		t.Fatal(err)
	}
	otherKey := lzwtc.DictKeyFor(ts, cfg)
	otherKey[0] ^= 0xFF
	aliased, err := c.PushDict(ctx, otherKey.String(), blob)
	if err != nil {
		t.Fatalf("push under an alias key: %v", err)
	}
	if aliased.Digest != info.Digest {
		t.Fatal("alias push changed the content digest")
	}
	if _, err := c.PushDict(ctx, info.Key, blob[:len(blob)-2]); !errors.As(err, &apiErr) || apiErr.Code != server.CodeDictInvalid {
		t.Fatalf("truncated blob: got %v, want %s", err, server.CodeDictInvalid)
	}
}

// TestDictRemoteCompressDifferential is the remote half of the
// differential guarantee: for every conformance case, compressing by
// dictionary ID over HTTP yields a container byte-identical to the
// in-process preloaded compression, and the server decompresses it back
// to the in-process text.
func TestDictRemoteCompressDifferential(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	for name, cfg := range dictCorpusCases() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			ts := readCorpusSet(t, name)

			info, err := c.TrainDict(ctx, ts, cfg, 0)
			if err != nil {
				t.Fatalf("train: %v", err)
			}
			container, err := c.Compress(ctx, ts, cfg, client.CompressOptions{DictID: info.Key})
			if err != nil {
				t.Fatalf("remote compress: %v", err)
			}

			// In-process reference: same training, same sharding (0 ⇒ one
			// frame), same 'D'-frame container.
			pre, err := lzwtc.Train(ts, cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			key, err := lzwtc.ParseDictKey(info.Key)
			if err != nil {
				t.Fatal(err)
			}
			store, err := lzwtc.OpenDictStore(lzwtc.DictStoreConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			ent, err := store.PutPreload(key, cfg, pre)
			if err != nil {
				t.Fatal(err)
			}
			if ent.Digest.String() != info.Digest {
				t.Fatal("local and remote training produced different canonical blobs")
			}
			sr, err := lzwtc.CompressShardedPreloaded(ctx, ts, cfg, pre, 0, lzwtc.BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := lzwtc.WriteWireDict(&want, sr, lzwtc.DictEntryRef(ent)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(container, want.Bytes()) {
				t.Fatalf("remote dict container differs from in-process (%d vs %d bytes)",
					len(container), want.Len())
			}

			// The hosting server resolves its own 'D' frame on the way back.
			remoteSet, err := c.Decompress(ctx, container)
			if err != nil {
				t.Fatalf("remote decompress: %v", err)
			}
			localSet, err := lzwtc.DecompressWireDict(bytes.NewReader(container), store)
			if err != nil {
				t.Fatal(err)
			}
			var remoteText, localText bytes.Buffer
			if err := remoteSet.WriteCubes(&remoteText); err != nil {
				t.Fatal(err)
			}
			if err := localSet.WriteCubes(&localText); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(remoteText.Bytes(), localText.Bytes()) {
				t.Fatal("remote decompression of the dict container diverged from in-process")
			}
			if err := lzwtc.Verify(ts, remoteSet); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDictJobDifferential: the async tier accepts dictid at submit,
// produces the same container the sync endpoint does, and rejects a
// dangling dictionary reference at submit time (not at run time).
func TestDictJobDifferential(t *testing.T) {
	c, srv := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc4-freeze")
	cfg := dictCorpusCases()["cc4-freeze"]

	info, err := c.TrainDict(ctx, ts, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := client.CompressOptions{DictID: info.Key, ShardPatterns: 7}
	sync, err := c.Compress(ctx, ts, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	async, err := c.CompressJob(ctx, ts, cfg, opts)
	if err != nil {
		t.Fatalf("async compress: %v", err)
	}
	if !bytes.Equal(async, sync) {
		t.Fatalf("async dict container differs from sync (%d vs %d bytes)", len(async), len(sync))
	}

	// A dictid nobody trained fails the submit itself with the typed
	// code — no job is enqueued for a doomed compression.
	before := srv.Registry().Snapshot().CounterValue(jobs.MetricJobsSubmitted)
	if before == 0 {
		t.Fatal("submit counter did not register the successful job")
	}
	dangling := lzwtc.DictKeyFor(ts, cfg)
	dangling[31] ^= 0x01
	var apiErr *client.APIError
	_, err = c.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{DictID: dangling.String()})
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeDictNotFound {
		t.Fatalf("dangling dictid submit: got %v, want %s", err, server.CodeDictNotFound)
	}
	if after := srv.Registry().Snapshot().CounterValue(jobs.MetricJobsSubmitted); after != before {
		t.Fatalf("dangling dictid still enqueued a job (%d -> %d)", before, after)
	}
}

// TestDictStatsSection: /v1/stats carries the dictionary-store section
// and it moves with traffic.
func TestDictStatsSection(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := dictCorpusCases()["cc2-freeze"]

	if _, err := c.TrainDict(ctx, ts, cfg, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainDict(ctx, ts, cfg, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ds := stats.DictStore
		if ds.Entries == 1 && ds.Trains == 1 && ds.Hits >= 1 && ds.MemBytes > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dict_store stats never settled: %+v", ds)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
