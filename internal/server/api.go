package server

import (
	"fmt"
	"net/url"
	"strconv"

	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

// API paths served by lzwtcd and spoken by the client package.
const (
	PathCompress    = "/v1/compress"
	PathDecompress  = "/v1/decompress"
	PathStats       = "/v1/stats"
	PathHealth      = "/healthz"
	PathMetrics     = "/metrics"
	PathTraceRecent = "/debug/trace/recent"
)

// Query parameter names for /v1/compress. The values mirror the lzwtc
// CLI flags and batch-manifest options.
const (
	ParamChar  = "char"
	ParamDict  = "dict"
	ParamEntry = "entry"
	ParamFill  = "fill"
	ParamTie   = "tie"
	ParamFull  = "full"
	ParamShard = "shard"
)

// Response headers carrying compression geometry next to the container.
const (
	HeaderPatterns = "X-Lzwtc-Patterns"
	HeaderWidth    = "X-Lzwtc-Width"
	HeaderRatio    = "X-Lzwtc-Ratio"
	HeaderShards   = "X-Lzwtc-Shards"
)

// Request-scoped propagation headers.
const (
	// HeaderTrace carries the caller's span context in the wire form
	// "<16 hex trace id>-<16 hex span id>" (telemetry.SpanContext), so
	// the server's spans link under the client's request span.
	HeaderTrace = "X-Lzwtc-Trace"
	// HeaderRequestID carries (request) or echoes (response) the
	// request identifier attached to span records and error envelopes.
	HeaderRequestID = "X-Request-Id"
)

// ErrorBody is the structured error envelope every non-2xx response
// carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the machine-readable error: a stable code plus a
// human message, and the request ID the server assigned (or echoed),
// joinable to the server-side trace of the failing request.
type ErrorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// Stable error codes.
const (
	CodeBadRequest       = "bad_request"
	CodeBodyTooLarge     = "body_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeTimeout          = "timeout"
	CodeCanceled         = "canceled"
	CodeDraining         = "draining"
	CodeInternal         = "internal"
)

// StatsResponse is the /v1/stats document. The dict-arena counters use
// the same JSON keys as the CompressRecord section of `lzwtc stats`
// run records (a test pins the key sets together), so scripts join the
// service view to the CLI view without a translation table.
type StatsResponse struct {
	UptimeSeconds        float64          `json:"uptime_seconds"`
	InFlight             int64            `json:"in_flight"`
	Requests             map[string]int64 `json:"requests"`
	Errors               int64            `json:"errors"`
	BytesIn              int64            `json:"bytes_in"`
	BytesOut             int64            `json:"bytes_out"`
	PatternsCompressed   int64            `json:"patterns_compressed"`
	PatternsDecompressed int64            `json:"patterns_decompressed"`
	DictPoolRecycles     int64            `json:"dict_pool_recycles"`
	DictPoolMisses       int64            `json:"dict_pool_misses"`
}

// TraceRecentResponse is the /debug/trace/recent document: the most
// recent traces in the server's ring buffer, newest first.
type TraceRecentResponse struct {
	Traces []telemetry.TraceRecord `json:"traces"`
}

// EncodeCompressQuery renders a Config (and optional shard size) as
// /v1/compress query parameters.
//lzwtcvet:ignore configbeforeuse pure serializer; ParseCompressQuery validates on receipt
func EncodeCompressQuery(cfg core.Config, shardPatterns int) url.Values {
	v := url.Values{}
	v.Set(ParamChar, strconv.Itoa(cfg.CharBits))
	v.Set(ParamDict, strconv.Itoa(cfg.DictSize))
	v.Set(ParamEntry, strconv.Itoa(cfg.EntryBits))
	v.Set(ParamFill, cfg.Fill.String())
	v.Set(ParamTie, cfg.Tie.String())
	v.Set(ParamFull, cfg.Full.String())
	if shardPatterns > 0 {
		v.Set(ParamShard, strconv.Itoa(shardPatterns))
	}
	return v
}

// ParseCompressQuery inverts EncodeCompressQuery, starting from the
// paper's default configuration for absent parameters.
func ParseCompressQuery(v url.Values) (core.Config, int, error) {
	cfg := core.DefaultConfig()
	shard := 0
	intParam := func(name string, dst *int) error {
		s := v.Get(name)
		if s == "" {
			return nil
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("server: parameter %s=%q: %w", name, s, err)
		}
		*dst = n
		return nil
	}
	if err := intParam(ParamChar, &cfg.CharBits); err != nil {
		return cfg, 0, err
	}
	if err := intParam(ParamDict, &cfg.DictSize); err != nil {
		return cfg, 0, err
	}
	if err := intParam(ParamEntry, &cfg.EntryBits); err != nil {
		return cfg, 0, err
	}
	if err := intParam(ParamShard, &shard); err != nil {
		return cfg, 0, err
	}
	if shard < 0 {
		return cfg, 0, fmt.Errorf("server: parameter shard=%d must be >= 0", shard)
	}
	switch s := v.Get(ParamFill); s {
	case "", "zero":
		cfg.Fill = core.FillZero
	case "one":
		cfg.Fill = core.FillOne
	case "repeat":
		cfg.Fill = core.FillRepeat
	default:
		return cfg, 0, fmt.Errorf("server: unknown fill policy %q", s)
	}
	switch s := v.Get(ParamTie); s {
	case "", "oldest":
		cfg.Tie = core.TieOldest
	case "newest":
		cfg.Tie = core.TieNewest
	case "widest":
		cfg.Tie = core.TieWidest
	default:
		return cfg, 0, fmt.Errorf("server: unknown tie policy %q", s)
	}
	switch s := v.Get(ParamFull); s {
	case "", "freeze":
		cfg.Full = core.FullFreeze
	case "reset":
		cfg.Full = core.FullReset
	default:
		return cfg, 0, fmt.Errorf("server: unknown full policy %q", s)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, 0, err
	}
	return cfg, shard, nil
}
