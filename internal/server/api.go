package server

import (
	"fmt"
	"net/url"
	"strconv"

	"lzwtc/internal/core"
	"lzwtc/internal/jobs"
	"lzwtc/internal/telemetry"
)

// API paths served by lzwtcd and spoken by the client package.
const (
	PathCompress    = "/v1/compress"
	PathDecompress  = "/v1/decompress"
	PathStats       = "/v1/stats"
	PathHealth      = "/healthz"
	PathMetrics     = "/metrics"
	PathTraceRecent = "/debug/trace/recent"

	// PathJobsCompress accepts asynchronous compressions: POST returns
	// 202 plus a job ID instead of holding the connection open.
	PathJobsCompress = "/v1/jobs/compress"
	// PathJobs is the per-job prefix: GET {id} for status, GET
	// {id}/result for the wire container, DELETE {id} to cancel.
	PathJobs = "/v1/jobs/"

	// PathDict trains shared dictionaries: PUT with cube text trains
	// (idempotently, through the store's singleflight) and answers the
	// content address.
	PathDict = "/v1/dict"
	// PathDictKey is the per-dictionary prefix: GET {key} fetches the
	// LZWD blob, PUT {key} uploads one, DELETE {key} evicts.
	PathDictKey = "/v1/dict/"
)

// JobResultSuffix selects a job's result document under PathJobs.
const JobResultSuffix = "/result"

// Query parameter names for /v1/compress. The values mirror the lzwtc
// CLI flags and batch-manifest options.
const (
	ParamChar  = "char"
	ParamDict  = "dict"
	ParamEntry = "entry"
	ParamFill  = "fill"
	ParamTie   = "tie"
	ParamFull  = "full"
	ParamShard = "shard"
	// ParamDictID names a stored shared dictionary (64-char hex store
	// key) for /v1/compress and /v1/jobs/compress: the compression
	// starts from that preload and the container carries a 'D' frame.
	ParamDictID = "dictid"
	// ParamEntries bounds the preload entry count for PUT /v1/dict
	// training (0 = keep everything the training run built).
	ParamEntries = "entries"
)

// Response headers carrying compression geometry next to the container.
const (
	HeaderPatterns = "X-Lzwtc-Patterns"
	HeaderWidth    = "X-Lzwtc-Width"
	HeaderRatio    = "X-Lzwtc-Ratio"
	HeaderShards   = "X-Lzwtc-Shards"
	// HeaderDictKey / HeaderDictDigest ride dictionary-referencing
	// responses: the store key and canonical blob digest of the
	// dictionary the compression (or blob response) used.
	HeaderDictKey    = "X-Lzwtc-Dict-Key"
	HeaderDictDigest = "X-Lzwtc-Dict-Digest"
)

// Request-scoped propagation headers.
const (
	// HeaderTrace carries the caller's span context in the wire form
	// "<16 hex trace id>-<16 hex span id>" (telemetry.SpanContext), so
	// the server's spans link under the client's request span.
	HeaderTrace = "X-Lzwtc-Trace"
	// HeaderRequestID carries (request) or echoes (response) the
	// request identifier attached to span records and error envelopes.
	HeaderRequestID = "X-Request-Id"
	// HeaderAPIKey identifies the tenant for job-tier quota accounting.
	// Absent or malformed keys fall back to the anonymous tenant.
	HeaderAPIKey = "X-Api-Key"
	// HeaderRetryAfter is the standard backpressure header every 429
	// carries: seconds until a retry is expected to succeed.
	HeaderRetryAfter = "Retry-After"
)

// ErrorBody is the structured error envelope every non-2xx response
// carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the machine-readable error: a stable code plus a
// human message, and the request ID the server assigned (or echoed),
// joinable to the server-side trace of the failing request.
type ErrorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// Stable error codes.
const (
	CodeBadRequest       = "bad_request"
	CodeBodyTooLarge     = "body_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeTimeout          = "timeout"
	CodeCanceled         = "canceled"
	CodeDraining         = "draining"
	CodeInternal         = "internal"

	// Job-tier codes. The three 429 codes mirror jobs.RejectError
	// reasons verbatim so the client's backoff can distinguish a full
	// queue from an exhausted quota.
	CodeQueueFull   = "queue_full"
	CodeRateLimited = "rate_limited"
	CodeActiveLimit = "active_limit"
	CodeJobNotFound = "job_not_found"
	CodeJobExpired  = "job_expired"
	CodeJobNotDone  = "job_not_done"
	CodeJobFailed   = "job_failed"
	CodeJobCanceled = "job_canceled"

	// Dictionary-store codes.
	CodeDictNotFound = "dict_not_found"
	CodeDictInvalid  = "dict_invalid"
)

// StatsResponse is the /v1/stats document. The dict-arena counters use
// the same JSON keys as the CompressRecord section of `lzwtc stats`
// run records (a test pins the key sets together), so scripts join the
// service view to the CLI view without a translation table.
type StatsResponse struct {
	UptimeSeconds        float64          `json:"uptime_seconds"`
	InFlight             int64            `json:"in_flight"`
	Requests             map[string]int64 `json:"requests"`
	Errors               int64            `json:"errors"`
	BytesIn              int64            `json:"bytes_in"`
	BytesOut             int64            `json:"bytes_out"`
	PatternsCompressed   int64            `json:"patterns_compressed"`
	PatternsDecompressed int64            `json:"patterns_decompressed"`
	DictPoolRecycles     int64            `json:"dict_pool_recycles"`
	DictPoolMisses       int64            `json:"dict_pool_misses"`
	Jobs                 JobsStats        `json:"jobs"`
	DictStore            DictStoreStats   `json:"dict_store"`
}

// DictStoreStats is the shared-dictionary section of /v1/stats,
// mirroring the dictstore registry counters plus the live occupancy.
type DictStoreStats struct {
	Entries     int   `json:"entries"`
	MemBytes    int64 `json:"mem_bytes"`
	DiskEntries int   `json:"disk_entries"`
	DiskBytes   int64 `json:"disk_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Trains      int64 `json:"trains"`
}

// DictResponse is the document PUT /v1/dict (train) and PUT
// /v1/dict/{key} (upload) answer: the content address and shape of the
// stored dictionary.
type DictResponse struct {
	Key       string `json:"key"`
	Digest    string `json:"digest"`
	Entries   int    `json:"entries"`
	BlobBytes int    `json:"blob_bytes"`
	// Source reports how the training resolved: "mem" or "disk" for an
	// already-stored dictionary, "trained" for a fresh run.
	Source string `json:"source,omitempty"`
}

// JobsStats is the async-tier section of /v1/stats, mirroring the
// internal/jobs registry counters plus the live queue/running gauges.
type JobsStats struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Expired   int64 `json:"expired"`
	Rejected  int64 `json:"rejected"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
}

// TraceRecentResponse is the /debug/trace/recent document: the most
// recent traces in the server's ring buffer, newest first.
type TraceRecentResponse struct {
	Traces []telemetry.TraceRecord `json:"traces"`
}

// JobStatusResponse is one job's status document, served by POST
// /v1/jobs/compress (202) and GET /v1/jobs/{id}. Timestamps use the
// same microsecond-Unix convention as trace span records.
type JobStatusResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// FramesDone / FramesTotal are the progress feed: completed pool
	// sub-jobs over expected (1/1 for unsharded compressions).
	FramesDone  int `json:"frames_done"`
	FramesTotal int `json:"frames_total"`
	// Patterns / Ratio / ResultBytes are populated once the job is done.
	Patterns       int     `json:"patterns,omitempty"`
	Ratio          float64 `json:"ratio,omitempty"`
	ResultBytes    int     `json:"result_bytes,omitempty"`
	Error          string  `json:"error,omitempty"`
	CreatedUnixUS  int64   `json:"created_unix_us"`
	StartedUnixUS  int64   `json:"started_unix_us,omitempty"`
	FinishedUnixUS int64   `json:"finished_unix_us,omitempty"`
	ExpiresUnixUS  int64   `json:"expires_unix_us,omitempty"`
}

// JobStatusFrom converts a manager snapshot into the wire document.
func JobStatusFrom(st jobs.Status) JobStatusResponse {
	resp := JobStatusResponse{
		ID:            st.ID,
		State:         st.State.String(),
		FramesDone:    st.FramesDone,
		FramesTotal:   st.FramesTotal,
		Patterns:      st.Patterns,
		Ratio:         st.Ratio,
		ResultBytes:   st.ResultBytes,
		Error:         st.Error,
		CreatedUnixUS: st.Created.UnixMicro(),
	}
	if !st.Started.IsZero() {
		resp.StartedUnixUS = st.Started.UnixMicro()
	}
	if !st.Finished.IsZero() {
		resp.FinishedUnixUS = st.Finished.UnixMicro()
	}
	if !st.Expires.IsZero() {
		resp.ExpiresUnixUS = st.Expires.UnixMicro()
	}
	return resp
}

// EncodeCompressQuery renders a Config (and optional shard size) as
// /v1/compress query parameters.
//lzwtcvet:ignore configbeforeuse pure serializer; ParseCompressQuery validates on receipt
func EncodeCompressQuery(cfg core.Config, shardPatterns int) url.Values {
	v := url.Values{}
	v.Set(ParamChar, strconv.Itoa(cfg.CharBits))
	v.Set(ParamDict, strconv.Itoa(cfg.DictSize))
	v.Set(ParamEntry, strconv.Itoa(cfg.EntryBits))
	v.Set(ParamFill, cfg.Fill.String())
	v.Set(ParamTie, cfg.Tie.String())
	v.Set(ParamFull, cfg.Full.String())
	if shardPatterns > 0 {
		v.Set(ParamShard, strconv.Itoa(shardPatterns))
	}
	return v
}

// ParseCompressQuery inverts EncodeCompressQuery, starting from the
// paper's default configuration for absent parameters.
func ParseCompressQuery(v url.Values) (core.Config, int, error) {
	cfg := core.DefaultConfig()
	shard := 0
	intParam := func(name string, dst *int) error {
		s := v.Get(name)
		if s == "" {
			return nil
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("server: parameter %s=%q: %w", name, s, err)
		}
		*dst = n
		return nil
	}
	if err := intParam(ParamChar, &cfg.CharBits); err != nil {
		return cfg, 0, err
	}
	if err := intParam(ParamDict, &cfg.DictSize); err != nil {
		return cfg, 0, err
	}
	if err := intParam(ParamEntry, &cfg.EntryBits); err != nil {
		return cfg, 0, err
	}
	if err := intParam(ParamShard, &shard); err != nil {
		return cfg, 0, err
	}
	if shard < 0 {
		return cfg, 0, fmt.Errorf("server: parameter shard=%d must be >= 0", shard)
	}
	switch s := v.Get(ParamFill); s {
	case "", "zero":
		cfg.Fill = core.FillZero
	case "one":
		cfg.Fill = core.FillOne
	case "repeat":
		cfg.Fill = core.FillRepeat
	default:
		return cfg, 0, fmt.Errorf("server: unknown fill policy %q", s)
	}
	switch s := v.Get(ParamTie); s {
	case "", "oldest":
		cfg.Tie = core.TieOldest
	case "newest":
		cfg.Tie = core.TieNewest
	case "widest":
		cfg.Tie = core.TieWidest
	default:
		return cfg, 0, fmt.Errorf("server: unknown tie policy %q", s)
	}
	switch s := v.Get(ParamFull); s {
	case "", "freeze":
		cfg.Full = core.FullFreeze
	case "reset":
		cfg.Full = core.FullReset
	default:
		return cfg, 0, fmt.Errorf("server: unknown full policy %q", s)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, 0, err
	}
	return cfg, shard, nil
}
