// Async job tier tests: the differential async-vs-sync layer (every
// conformance case must come back byte-identical through the job API),
// the job lifecycle e2e matrix (cancel, TTL expiry, quotas, tenant
// isolation, drain), and the metric/span surface of the new endpoints.
package server_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lzwtc"
	"lzwtc/client"
	"lzwtc/internal/jobs"
	"lzwtc/internal/server"
	"lzwtc/internal/telemetry"
)

// waitJobFast polls with a tight interval to keep the suite quick.
func waitJobFast(t *testing.T, c *client.Client, id string) *client.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.WaitJob(ctx, id, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for job %s: %v", id, err)
	}
	return st
}

// compressAsync runs submit-wait-fetch with the fast poll.
func compressAsync(t *testing.T, c *client.Client, ts *lzwtc.TestSet, cfg lzwtc.Config, shard int) []byte {
	t.Helper()
	ctx := context.Background()
	st, err := c.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{ShardPatterns: shard})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJobFast(t, c, st.ID)
	data, err := c.JobResult(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return data
}

// bigSet builds a deterministic wide set whose sharded compression is
// slow enough (shard=1, Workers:1) to observe running jobs.
func bigSet(t *testing.T, patterns, width int) *lzwtc.TestSet {
	t.Helper()
	ts := lzwtc.NewTestSet(width)
	seed := uint64(12345)
	line := make([]byte, width)
	for p := 0; p < patterns; p++ {
		for i := range line {
			seed = seed*6364136223846793005 + 1442695040888963407
			switch (seed >> 33) % 3 {
			case 0:
				line[i] = '0'
			case 1:
				line[i] = '1'
			default:
				line[i] = 'X'
			}
		}
		if err := ts.Add(lzwtc.MustPattern(string(line))); err != nil {
			t.Fatal(err)
		}
	}
	return ts
}

// TestJobsDifferentialCorpus: every conformance case through the job
// API must be byte-identical to the synchronous endpoint AND to the
// in-process pipeline. This is the async tier's correctness anchor.
func TestJobsDifferentialCorpus(t *testing.T) {
	c, _ := startService(t, server.Config{JobConcurrent: 4})
	ctx := context.Background()
	for name, cfg := range corpusCases() {
		t.Run(name, func(t *testing.T) {
			ts := readCorpusSet(t, name)

			var local bytes.Buffer
			res, err := lzwtc.Compress(ts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.WriteWire(&local); err != nil {
				t.Fatal(err)
			}
			sync, err := c.Compress(ctx, ts, cfg, client.CompressOptions{})
			if err != nil {
				t.Fatal(err)
			}
			async := compressAsync(t, c, ts, cfg, 0)

			if !bytes.Equal(sync, local.Bytes()) {
				t.Fatalf("sync container diverges from in-process (%d vs %d bytes)", len(sync), local.Len())
			}
			if !bytes.Equal(async, sync) {
				t.Fatalf("async container diverges from sync (%d vs %d bytes)", len(async), len(sync))
			}
		})
	}
}

// TestJobsDifferentialSharded covers the sharded path through the job
// tier: async == sync for multi-frame containers too.
func TestJobsDifferentialSharded(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc4-freeze")
	cfg := corpusCases()["cc4-freeze"]
	for _, shard := range []int{1, 3, 1000} {
		sync, err := c.Compress(ctx, ts, cfg, client.CompressOptions{ShardPatterns: shard})
		if err != nil {
			t.Fatal(err)
		}
		async := compressAsync(t, c, ts, cfg, shard)
		if !bytes.Equal(async, sync) {
			t.Fatalf("shard=%d: async %d bytes != sync %d bytes", shard, len(async), len(sync))
		}
	}
}

// TestJobLifecycleHappyPath pins the status documents along the
// queued -> running -> done walk and the result headers.
func TestJobLifecycleHappyPath(t *testing.T) {
	c, srv := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc4-reset")
	cfg := corpusCases()["cc4-reset"]

	st, err := c.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.CreatedUnixUS == 0 {
		t.Fatalf("bad initial status: %+v", st)
	}
	fin := waitJobFast(t, c, st.ID)
	if fin.State != "done" || fin.FramesDone != 1 || fin.FramesTotal != 1 {
		t.Fatalf("final status: %+v", fin)
	}
	if fin.Patterns != len(ts.Cubes) || fin.ResultBytes <= 0 || fin.Ratio <= 0 {
		t.Fatalf("summary fields: %+v", fin)
	}
	if fin.StartedUnixUS == 0 || fin.FinishedUnixUS == 0 || fin.ExpiresUnixUS == 0 {
		t.Fatalf("timestamps: %+v", fin)
	}

	data, err := c.JobResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	round, err := c.Decompress(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := lzwtc.Verify(ts, round); err != nil {
		t.Fatalf("async round trip: %v", err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Submitted < 1 || stats.Jobs.Completed < 1 {
		t.Fatalf("stats jobs section not fed: %+v", stats.Jobs)
	}
	if q, r := srv.Jobs().Counts(); q != 0 || r != 0 {
		t.Fatalf("manager not idle after job: queued=%d running=%d", q, r)
	}
}

// occupyRunner parks a blocking job in the manager's (single) runner
// slot under the anonymous tenant, so HTTP-submitted keyless jobs
// queue behind it deterministically. The returned stop func releases
// it; callers must stop before asserting the service is idle.
func occupyRunner(t *testing.T, srv *server.Server) (id string, stop func()) {
	t.Helper()
	started := make(chan struct{})
	release := make(chan struct{})
	st, err := srv.Jobs().Submit(context.Background(), "anonymous",
		func(ctx context.Context, pr *jobs.Progress) (*jobs.Payload, error) {
			close(started)
			select {
			case <-release:
				return &jobs.Payload{Data: []byte{0}, Patterns: 1, Ratio: 1}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
	if err != nil {
		t.Fatalf("occupying runner: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocking job never started")
	}
	var once sync.Once
	return st.ID, func() { once.Do(func() { close(release) }) }
}

// TestJobCancelWhileQueued: with the runner slot occupied, a second
// job cancels straight out of the queue and never runs.
func TestJobCancelWhileQueued(t *testing.T) {
	c, srv := startService(t, server.Config{JobConcurrent: 1})
	ctx := context.Background()
	_, stop := occupyRunner(t, srv)
	defer stop()

	victim, err := c.SubmitCompressJob(ctx, readCorpusSet(t, "cc2-freeze"), corpusCases()["cc2-freeze"], client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if victim.State != "queued" {
		t.Fatalf("victim should be queued behind the blocker, got %s", victim.State)
	}
	st, err := c.CancelJob(ctx, victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "canceled" {
		t.Fatalf("queued cancel: want canceled, got %s", st.State)
	}
	if st.StartedUnixUS != 0 {
		t.Fatalf("canceled-from-queue job claims to have started: %+v", st)
	}
	if _, err := c.JobResult(ctx, victim.ID); !isAPICode(err, server.CodeJobCanceled) {
		t.Fatalf("result of canceled job: %v", err)
	}
	stop()
}

// TestJobCancelWhileRunning: DELETE on a running job cancels its
// context; the job lands in canceled, and its result answers the
// typed job_canceled conflict.
func TestJobCancelWhileRunning(t *testing.T) {
	c, srv := startService(t, server.Config{JobConcurrent: 1})
	ctx := context.Background()
	id, stop := occupyRunner(t, srv)
	defer stop()

	if _, err := c.CancelJob(ctx, id); err != nil {
		t.Fatal(err)
	}
	fin := waitCanceled(t, c, id)
	if fin.StartedUnixUS == 0 {
		t.Fatalf("running job lost its start time: %+v", fin)
	}
	if _, err := c.JobResult(ctx, id); !isAPICode(err, server.CodeJobCanceled) {
		t.Fatalf("result of canceled job: %v", err)
	}
}

// TestJobCancelShardedCompression: a real sharded compression is
// canceled mid-run — the pool's between-shard context checks abort it
// before all frames complete. The input is sized so the job takes long
// enough to observe running; if the host races through it anyway the
// test skips rather than flakes.
func TestJobCancelShardedCompression(t *testing.T) {
	c, _ := startService(t, server.Config{Workers: 1, JobConcurrent: 1})
	ctx := context.Background()
	big := bigSet(t, 4000, 512)

	st, err := c.SubmitCompressJob(ctx, big, lzwtc.DefaultConfig(), client.CompressOptions{ShardPatterns: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := c.JobStatus(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == "running" {
			break
		}
		if cur.State != "queued" {
			t.Skipf("job finished before cancel could land (%s)", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
	}
	if _, err := c.CancelJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	fin, err := c.WaitJob(cctx, st.ID, 2*time.Millisecond)
	if errors.Is(err, client.ErrJobCanceled) {
		if fin.FramesDone >= fin.FramesTotal {
			t.Fatalf("canceled job claims full progress: %d/%d", fin.FramesDone, fin.FramesTotal)
		}
		return
	}
	// The job can legitimately have won the race and completed.
	if err != nil {
		t.Fatalf("wait after cancel: %v", err)
	}
	t.Skip("job completed before the cancel took effect")
}

// waitCanceled waits for the terminal state and asserts it is canceled.
func waitCanceled(t *testing.T, c *client.Client, id string) *client.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.WaitJob(ctx, id, 2*time.Millisecond)
	if !errors.Is(err, client.ErrJobCanceled) {
		t.Fatalf("want ErrJobCanceled, got %v (state %+v)", err, st)
	}
	return st
}

// TestJobResultAfterTTL: a swept job answers 404 with the typed
// job_expired code — distinguishable from a never-existed ID.
func TestJobResultAfterTTL(t *testing.T) {
	c, _ := startService(t, server.Config{
		JobResultTTL:     20 * time.Millisecond,
		JobSweepInterval: 5 * time.Millisecond,
	})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]

	st, err := c.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobFast(t, c, st.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = c.JobStatus(ctx, st.ID)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !isAPICode(err, server.CodeJobExpired) {
		t.Fatalf("expired status: want %s, got %v", server.CodeJobExpired, err)
	}
	if _, err := c.JobResult(ctx, st.ID); !isAPICode(err, server.CodeJobExpired) {
		t.Fatalf("expired result: %v", err)
	}
	if _, err := c.JobStatus(ctx, "00000000deadbeef"); !isAPICode(err, server.CodeJobNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
}

// isAPICode matches an error against a typed API error code.
func isAPICode(err error, code string) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Code == code
}

// TestJobQuotaExhaustion: an undersized per-tenant quota answers 429
// with a Retry-After the client echoes into its backoff.
func TestJobQuotaExhaustion(t *testing.T) {
	_, srv := startService(t, server.Config{
		JobQuota: jobs.Quota{RatePerSec: 0.01, Burst: 1},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]

	// No retries: the second submission surfaces the raw 429.
	c0 := client.New(hs.URL, client.Options{Retries: 0, APIKey: "tenant-a"})
	if _, err := c0.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{}); err != nil {
		t.Fatalf("burst submission: %v", err)
	}
	_, err := c0.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ae.Code != server.CodeRateLimited {
		t.Fatalf("want 429 %s, got %v", server.CodeRateLimited, err)
	}
	if ae.RetryAfter < time.Second {
		t.Fatalf("429 without a usable Retry-After: %v", ae.RetryAfter)
	}

	// Another tenant is unaffected.
	cb := client.New(hs.URL, client.Options{Retries: 0, APIKey: "tenant-b"})
	if _, err := cb.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{}); err != nil {
		t.Fatalf("tenant isolation: %v", err)
	}

	// With retries, the 429 feeds the backoff loop: the client observes
	// the throttle through OnBackpressure and honors a capped wait.
	var seen []time.Duration
	cr := client.New(hs.URL, client.Options{
		Retries: 1, APIKey: "tenant-a", MaxBackoff: 10 * time.Millisecond,
		OnBackpressure: func(d time.Duration) { seen = append(seen, d) },
	})
	_, err = cr.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{})
	if err == nil {
		t.Fatal("quota should still be exhausted")
	}
	if len(seen) == 0 {
		t.Fatal("OnBackpressure never observed the 429")
	}
	for _, d := range seen {
		if d <= 0 || d > 10*time.Millisecond {
			t.Fatalf("backoff %v escaped the MaxBackoff cap", d)
		}
	}
}

// TestJobTenantIsolation: job IDs do not resolve across API keys.
func TestJobTenantIsolation(t *testing.T) {
	_, srv := startService(t, server.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]

	ca := client.New(hs.URL, client.Options{APIKey: "alpha"})
	cb := client.New(hs.URL, client.Options{APIKey: "beta"})
	st, err := ca.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.JobStatus(ctx, st.ID); !isAPICode(err, server.CodeJobNotFound) {
		t.Fatalf("cross-tenant status: %v", err)
	}
	if _, err := cb.JobResult(ctx, st.ID); !isAPICode(err, server.CodeJobNotFound) {
		t.Fatalf("cross-tenant result: %v", err)
	}
	if _, err := cb.CancelJob(ctx, st.ID); !isAPICode(err, server.CodeJobNotFound) {
		t.Fatalf("cross-tenant cancel: %v", err)
	}
	// The owner still sees it.
	if _, err := ca.JobStatus(ctx, st.ID); err != nil {
		t.Fatalf("owner lost its job: %v", err)
	}
}

// TestJobEndpointErrors pins the envelope for malformed job requests.
func TestJobEndpointErrors(t *testing.T) {
	_, srv := startService(t, server.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	get := func(path string) int {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(server.PathJobs + "no/such/shape"); got != http.StatusBadRequest {
		t.Fatalf("malformed id: want 400, got %d", got)
	}
	if got := get(server.PathJobsCompress); got != http.StatusMethodNotAllowed {
		t.Fatalf("GET submit: want 405, got %d", got)
	}
	req, err := http.NewRequest(http.MethodPut, hs.URL+server.PathJobs+"0011223344556677", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT job: want 405, got %d", resp.StatusCode)
	}
}

// TestJobSubmitReturns202WithLocation pins the raw submission shape.
func TestJobSubmitReturns202WithLocation(t *testing.T) {
	_, srv := startService(t, server.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ts := readCorpusSet(t, "cc2-freeze")
	var cubes bytes.Buffer
	if err := ts.WriteCubes(&cubes); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+server.PathJobsCompress+"?"+
		server.EncodeCompressQuery(corpusCases()["cc2-freeze"], 0).Encode(),
		"text/plain", &cubes)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("want 202, got %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, server.PathJobs) || len(loc) == len(server.PathJobs) {
		t.Fatalf("Location %q does not point at a job", loc)
	}
}

// TestJobTraceJoin: the submit span and the job's run span land in the
// same trace, so async work stays joinable to the admitting request.
func TestJobTraceJoin(t *testing.T) {
	c, _, srv, _ := startTracedService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]

	st, err := c.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobFast(t, c, st.ID)

	var submit, run *telemetry.SpanRecord
	deadline := time.Now().Add(5 * time.Second)
	for submit == nil || run == nil {
		if time.Now().After(deadline) {
			t.Fatalf("spans missing: submit=%v run=%v", submit != nil, run != nil)
		}
		for _, tr := range srv.Traces().Recent(100) {
			for i := range tr.Spans {
				sp := tr.Spans[i]
				switch sp.Name {
				case server.SpanJobSubmit:
					submit = &sp
				case jobs.SpanJobRun:
					run = &sp
				}
			}
		}
	}
	if submit.TraceID != run.TraceID {
		t.Fatalf("job.run trace %s detached from submit trace %s", run.TraceID, submit.TraceID)
	}
	if run.ParentID != submit.SpanID {
		t.Fatalf("job.run parent %s is not the submit span %s", run.ParentID, submit.SpanID)
	}
}

// TestJobMetricsExposed asserts the job tier's /metrics surface: the
// per-endpoint counters and the manager family all appear.
func TestJobMetricsExposed(t *testing.T) {
	c, _ := startService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]
	st, err := c.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobFast(t, c, st.ID)
	if _, err := c.JobResult(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		server.MetricJobSubmitRequests,
		server.MetricJobRequests,
		jobs.MetricJobsSubmitted,
		jobs.MetricJobsCompleted,
		jobs.MetricJobsQueueDepth,
		jobs.MetricJobsRunning,
		jobs.MetricJobsRetained,
		jobs.MetricJobDuration,
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("metric %s missing from /metrics", name)
		}
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests["job_submit"] < 1 || stats.Requests["job"] < 2 {
		t.Fatalf("per-endpoint job counters not folded into stats: %+v", stats.Requests)
	}
}

// TestJobDrainWithJobsInFlight: Serve's graceful drain waits for
// admitted jobs, and the drained service refuses new submissions.
func TestJobDrainWithJobsInFlight(t *testing.T) {
	srv := server.New(server.Config{JobConcurrent: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln, 30*time.Second) }()

	base := "http://" + ln.Addr().String()
	c := client.New(base, client.Options{Retries: 0})
	_, stopBlocker := occupyRunner(t, srv)
	defer stopBlocker()
	st, err := c.SubmitCompressJob(context.Background(), readCorpusSet(t, "cc2-freeze"),
		corpusCases()["cc2-freeze"], client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cancel() // drain starts with one job running and one queued
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned with jobs in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	stopBlocker()
	err = <-serveDone
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The drained manager retained the finished job: it completed, was
	// not canceled, and new work is refused (the manager is closed).
	fin, err := srv.Jobs().Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != jobs.StateDone {
		t.Fatalf("in-flight job after drain: %s (%s)", fin.State, fin.Error)
	}
	if _, err := srv.Jobs().Submit(context.Background(), "t", nil); !errors.Is(err, jobs.ErrDraining) {
		t.Fatalf("drained manager admitted work: %v", err)
	}
}

// TestJobSubmitValidatesEagerly: malformed queries and bodies fail at
// submit time with a 400, never as a queued job the caller must poll.
func TestJobSubmitValidatesEagerly(t *testing.T) {
	_, srv := startService(t, server.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	resp, err := http.Post(hs.URL+server.PathJobsCompress+"?char=99", "text/plain",
		strings.NewReader("0X\n1X\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad config: want 400, got %d", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+server.PathJobsCompress, "text/plain",
		strings.NewReader("01X\nnot-a-pattern\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: want 400, got %d", resp.StatusCode)
	}
	if sub, _ := fetchJobsStats(t, hs.URL); sub != 0 {
		t.Fatalf("invalid submissions were admitted: %d", sub)
	}
}

// fetchJobsStats reads (submitted, completed) from /v1/stats.
func fetchJobsStats(t *testing.T, base string) (int64, int64) {
	t.Helper()
	c := client.New(base, client.Options{Retries: 0})
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return stats.Jobs.Submitted, stats.Jobs.Completed
}

// TestJobQueueBackpressure: a one-deep queue answers queue_full with
// Retry-After once the runner and the queue slot are both taken.
func TestJobQueueBackpressure(t *testing.T) {
	_, srv := startService(t, server.Config{JobConcurrent: 1, JobQueueDepth: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ctx := context.Background()
	c := client.New(hs.URL, client.Options{Retries: 0})
	small := readCorpusSet(t, "cc2-freeze")
	smallCfg := corpusCases()["cc2-freeze"]

	_, stop := occupyRunner(t, srv)
	defer stop()

	// The runner is pinned, so this submission fills the single queue
	// slot and the next one must overflow.
	queued, err := c.SubmitCompressJob(ctx, small, smallCfg, client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitCompressJob(ctx, small, smallCfg, client.CompressOptions{})
	var rejected *client.APIError
	if !errors.As(err, &rejected) {
		t.Fatalf("overflow submit: %v", err)
	}
	if rejected.Status != http.StatusTooManyRequests || rejected.Code != server.CodeQueueFull {
		t.Fatalf("want 429 %s, got %d %s", server.CodeQueueFull, rejected.Status, rejected.Code)
	}
	if rejected.RetryAfter < time.Second {
		t.Fatalf("queue_full without Retry-After: %v", rejected.RetryAfter)
	}

	// Releasing the blocker drains the queue: the held submission runs
	// to completion and a fresh one is admitted again.
	stop()
	waitJobFast(t, c, queued.ID)
	if _, err := c.SubmitCompressJob(ctx, small, smallCfg, client.CompressOptions{}); err != nil {
		t.Fatalf("post-backpressure submit: %v", err)
	}
}
