package fsim

import (
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/fault"
)

func exhaustive(width int) *bitvec.CubeSet {
	cs := bitvec.NewCubeSet(width)
	for v := 0; v < 1<<uint(width); v++ {
		p := bitvec.New(width)
		for b := 0; b < width; b++ {
			p.Set(b, bitvec.Bit(v>>uint(b)&1))
		}
		cs.Cubes = append(cs.Cubes, p)
	}
	return cs
}

func TestC17FullCoverageExhaustive(t *testing.T) {
	cb, err := circuit.NewComb(circuit.C17())
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	res, err := Run(cb, exhaustive(5), faults)
	if err != nil {
		t.Fatal(err)
	}
	// c17 is fully testable: every collapsed stuck-at fault must fall to
	// the exhaustive set.
	if res.Coverage() != 1.0 {
		undet := []string{}
		for i, at := range res.DetectedBy {
			if at < 0 {
				undet = append(undet, faults[i].Name(cb.C))
			}
		}
		t.Fatalf("coverage %.3f, undetected: %v", res.Coverage(), undet)
	}
}

func TestDetectionIsXAware(t *testing.T) {
	cb, err := circuit.NewComb(circuit.C17())
	if err != nil {
		t.Fatal(err)
	}
	n22, _ := cb.C.ByName("N22")
	f := []fault.Fault{{Gate: n22, Pin: -1, SA: bitvec.Zero}}

	// Fully X cube: nothing can be detected fill-independently.
	cs := bitvec.NewCubeSet(5)
	cs.Add(bitvec.MustParse("XXXXX"))
	res, err := Run(cb, cs, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 0 {
		t.Fatal("all-X cube credited with detection")
	}

	// N22 s-a-0 needs good N22 = 1: inputs 00000 give N22=0 (no detect);
	// 11111 give N22=1 (detect). A cube specifying only what's needed:
	// N1=0 makes N10=1; N2=0,N3=0 -> N11=1, N16=1 -> N22 = NAND(1,1)=0.
	cs2 := bitvec.NewCubeSet(5)
	cs2.Add(bitvec.MustParse("000XX")) // N22 good = 0 -> s-a-0 unobservable
	res2, err := Run(cb, cs2, f)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Detected != 0 {
		t.Fatal("cube with good=stuck value credited")
	}

	cs3 := bitvec.NewCubeSet(5)
	cs3.Add(bitvec.MustParse("111XX")) // N10=0 -> N22=1 specified: detect
	res3, err := Run(cb, cs3, f)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Detected != 1 || res3.DetectedBy[0] != 0 {
		t.Fatalf("partial cube failed to detect: %+v", res3)
	}
}

func TestFaultDroppingFirstDetection(t *testing.T) {
	cb, _ := circuit.NewComb(circuit.C17())
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	cs := exhaustive(5)
	res, err := Run(cb, cs, faults)
	if err != nil {
		t.Fatal(err)
	}
	// First-detection indices must point at a cube that actually detects:
	// re-run each singleton to confirm.
	for fi, at := range res.DetectedBy {
		if at < 0 {
			continue
		}
		single := bitvec.NewCubeSet(5)
		single.Add(cs.Cubes[at])
		r2, err := Run(cb, single, faults[fi:fi+1])
		if err != nil {
			t.Fatal(err)
		}
		if r2.Detected != 1 {
			t.Fatalf("fault %v: claimed detection by cube %d not reproducible", faults[fi].Name(cb.C), at)
		}
	}
}

func TestSequentialCircuitConeStopsAtDFF(t *testing.T) {
	cb, err := circuit.NewComb(circuit.S27())
	if err != nil {
		t.Fatal(err)
	}
	cc := NewConeCache(cb)
	// Fault effects are captured at DFF inputs (PPOs), not propagated
	// through them combinationally.
	for id, g := range cb.C.Gates {
		cone := cc.Cone(id)
		for _, m := range cone.order {
			if cb.C.Gates[m].Type == circuit.DFF {
				t.Fatalf("cone of %s crosses DFF %s", g.Name, cb.C.Gates[m].Name)
			}
		}
	}
}

func TestS27ScanCoverage(t *testing.T) {
	cb, err := circuit.NewComb(circuit.S27())
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	res, err := Run(cb, exhaustive(7), faults)
	if err != nil {
		t.Fatal(err)
	}
	// Full-scan s27 is fully stuck-at testable.
	if res.Coverage() != 1.0 {
		t.Fatalf("s27 full-scan coverage %.3f", res.Coverage())
	}
}

func BenchmarkFaultSim(b *testing.B) {
	gen, _ := circuit.Generate(circuit.GenConfig{Name: "b", Inputs: 16, Outputs: 8, DFFs: 40, Comb: 500, Seed: 3})
	cb, _ := circuit.NewComb(gen)
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	cs := bitvec.NewCubeSet(cb.Width())
	for i := 0; i < 64; i++ {
		p := bitvec.New(cb.Width())
		for j := 0; j < cb.Width(); j++ {
			p.Set(j, bitvec.Bit((i+j)%2))
		}
		cs.Cubes = append(cs.Cubes, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cb, cs, faults); err != nil {
			b.Fatal(err)
		}
	}
}
