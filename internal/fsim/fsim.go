// Package fsim is an X-aware parallel-pattern fault simulator.
//
// Test cubes keep their don't-care bits during simulation: a fault
// counts as detected by a cube only when good and faulty machines both
// produce *specified* and differing values at an observation point —
// i.e. detection holds no matter how the compressor later assigns the X
// bits. This is the correctness contract the paper's flow depends on:
// the compression stage is free to fill don't-cares, so fault dropping
// must be fill-independent.
//
// Patterns are simulated 64 at a time in the (one, zero) plane encoding;
// each fault is then propagated event-free through its fanout cone only.
package fsim

import (
	"math/bits"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/fault"
	"lzwtc/internal/sim"
)

// Result reports a fault-simulation run.
type Result struct {
	Total      int
	Detected   int
	DetectedBy []int // per fault: index of the first detecting cube, -1 if none
}

// Coverage returns detected/total.
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Run simulates every cube against every fault (with fault dropping) and
// reports first-detection indices.
func Run(cb *circuit.Comb, cubes *bitvec.CubeSet, faults []fault.Fault) (*Result, error) {
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	remaining := make([]int, len(faults)) // indices into faults
	for i := range remaining {
		remaining[i] = i
	}

	ps := sim.NewPState(cb)
	cones := newConeCache(cb)
	fvals := make([]sim.PVal, len(cb.C.Gates))

	for base := 0; base < len(cubes.Cubes) && len(remaining) > 0; base += 64 {
		hi := base + 64
		if hi > len(cubes.Cubes) {
			hi = len(cubes.Cubes)
		}
		if err := ps.Apply(cubes.Cubes[base:hi]); err != nil {
			return nil, err
		}
		good := ps.Vals()
		nPat := hi - base

		kept := remaining[:0]
		for _, fi := range remaining {
			f := faults[fi]
			mask := detectMask(cb, cones, good, fvals, f, nPat)
			if mask == 0 {
				kept = append(kept, fi)
				continue
			}
			res.DetectedBy[fi] = base + bits.TrailingZeros64(mask)
			res.Detected++
		}
		remaining = kept
	}
	return res, nil
}

// DetectsAny reports, for a single cube, which of the given faults it
// detects (X-aware). Used by ATPG for per-cube dropping.
func DetectsAny(cb *circuit.Comb, cones *ConeCache, good *sim.PState, faults []fault.Fault, scratch []sim.PVal) []bool {
	out := make([]bool, len(faults))
	for i, f := range faults {
		out[i] = detectMask(cb, cones, good.Vals(), scratch, f, good.N()) != 0
	}
	return out
}

// detectMask returns, as a bit mask over pattern slots, which patterns
// detect the fault: good and faulty observation values specified and
// different.
func detectMask(cb *circuit.Comb, cones *ConeCache, good []sim.PVal, fvals []sim.PVal, f fault.Fault, nPat int) uint64 {
	site := f.SiteGate()
	cone := cones.Cone(site)

	// Faulty value at the site.
	var fsite sim.PVal
	g := cb.C.Gates[site]
	if f.Pin < 0 {
		fsite = sim.FromBit(f.SA)
	} else {
		in := make([]sim.PVal, len(g.Fanin))
		for k, d := range g.Fanin {
			in[k] = good[d]
		}
		in[f.Pin] = sim.FromBit(f.SA)
		fsite = sim.EvalP(g.Type, in)
	}
	// Fast reject: a downstream specified difference requires a specified
	// difference at the site (an X at either side can only mask), so the
	// detection mask is bounded by the site's difference mask.
	siteDiff := diffMask(good[site], fsite)
	if siteDiff == 0 {
		return 0
	}

	fvals[site] = fsite
	var buf [8]sim.PVal
	for _, id := range cone.order {
		gg := &cb.C.Gates[id]
		in := buf[:0]
		for _, d := range gg.Fanin {
			if cone.member[d] || d == site {
				in = append(in, fvals[d])
			} else {
				in = append(in, good[d])
			}
		}
		fvals[id] = sim.EvalP(gg.Type, in)
	}

	var mask uint64
	for i := 0; i < cb.ObsCount(); i++ {
		o := cb.ObsAt(i)
		fv := good[o]
		if cone.member[o] || o == site {
			fv = fvals[o]
		}
		mask |= diffMask(good[o], fv)
	}
	if nPat < 64 {
		mask &= 1<<uint(nPat) - 1
	}
	return mask
}

// diffMask marks slots where both values are specified and different.
func diffMask(a, b sim.PVal) uint64 {
	return a.One&b.Zero | a.Zero&b.One
}

// ConeCache memoizes fanout cones: the set of gates reachable from a
// site, in levelized order (excluding the site itself).
type ConeCache struct {
	cb    *circuit.Comb
	pos   []int // gate id -> position in cb.Order
	cones map[int]*cone
}

type cone struct {
	member []bool
	order  []int
}

// NewConeCache builds an empty cache for the circuit.
func NewConeCache(cb *circuit.Comb) *ConeCache { return newConeCache(cb) }

func newConeCache(cb *circuit.Comb) *ConeCache {
	pos := make([]int, len(cb.C.Gates))
	for i, id := range cb.Order {
		pos[id] = i
	}
	return &ConeCache{cb: cb, pos: pos, cones: make(map[int]*cone)}
}

// Cone returns the fanout cone of a site.
func (cc *ConeCache) Cone(site int) *cone {
	if c, ok := cc.cones[site]; ok {
		return c
	}
	member := make([]bool, len(cc.cb.C.Gates))
	var ids []int
	stack := []int{site}
	fanout := cc.cb.C.Fanout()
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range fanout[id] {
			// A DFF's input is a pseudo output; the fault effect stops
			// there (it would be captured, not propagated combinationally).
			if cc.cb.C.Gates[s].Type == circuit.DFF || member[s] {
				continue
			}
			member[s] = true
			ids = append(ids, s)
			stack = append(stack, s)
		}
	}
	// Levelize the cone by global order position.
	sortByPos(ids, cc.pos)
	c := &cone{member: member, order: ids}
	cc.cones[site] = c
	return c
}

func sortByPos(ids []int, pos []int) {
	// Insertion sort: cones are small and mostly ordered already.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && pos[ids[j]] < pos[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
