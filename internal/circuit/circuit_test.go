package circuit

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseS27(t *testing.T) {
	c := S27()
	n := c.Count()
	if n.Inputs != 4 || n.Outputs != 1 || n.DFFs != 3 {
		t.Fatalf("counts = %+v", n)
	}
	if n.Gates != 4+3+10 {
		t.Fatalf("gate count = %d", n.Gates)
	}
	if _, ok := c.ByName("G11"); !ok {
		t.Fatal("G11 missing")
	}
}

func TestParseC17(t *testing.T) {
	c := C17()
	n := c.Count()
	if n.Inputs != 5 || n.Outputs != 2 || n.DFFs != 0 || n.Combinational != 6 {
		t.Fatalf("counts = %+v", n)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := S27()
	var buf bytes.Buffer
	if err := c.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench("s27rt", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if c2.Count() != c.Count() {
		t.Fatalf("counts changed: %+v vs %+v", c2.Count(), c.Count())
	}
	// Same structure gate by gate (names map identically).
	for _, g := range c.Gates {
		id2, ok := c2.ByName(g.Name)
		if !ok {
			t.Fatalf("gate %s lost", g.Name)
		}
		g2 := c2.Gates[id2]
		if g2.Type != g.Type || len(g2.Fanin) != len(g.Fanin) {
			t.Fatalf("gate %s changed: %v vs %v", g.Name, g2, g)
		}
		for i := range g.Fanin {
			if c2.Gates[g2.Fanin[i]].Name != c.Gates[g.Fanin[i]].Name {
				t.Fatalf("gate %s fanin %d changed", g.Name, i)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"G1 = NAND(G0)\n",                          // undefined net
		"INPUT(a)\nINPUT(a)\n",                     // duplicate
		"INPUT(a)\nfoo bar\n",                      // junk
		"INPUT(a)\nG2 = FROB(a, a)\n",              // unknown type
		"INPUT(a)\nOUTPUT(zz)\nG2 = NOT(a)\n",      // undefined output
		"INPUT(a)\nG1 = AND(a)\n",                  // arity
		"G1 = NOT(G2)\nG2 = NOT(G1)\nOUTPUT(G1)\n", // combinational cycle
	}
	for i, s := range bad {
		if _, err := ParseBench("bad", strings.NewReader(s)); err == nil {
			t.Errorf("case %d parsed without error:\n%s", i, s)
		}
	}
}

func TestLevelizeOrdersFaninsFirst(t *testing.T) {
	c := S27()
	order, err := c.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for id, g := range c.Gates {
		if g.Type == Input || g.Type == DFF {
			continue
		}
		for _, f := range g.Fanin {
			if pos[f] >= pos[id] {
				t.Fatalf("gate %s evaluated before fanin %s", g.Name, c.Gates[f].Name)
			}
		}
	}
}

func TestSequentialLoopIsLegal(t *testing.T) {
	// A cycle through a DFF is fine; only combinational cycles fail.
	src := "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(a, q)\n"
	if _, err := ParseBench("loop", strings.NewReader(src)); err != nil {
		t.Fatalf("DFF loop rejected: %v", err)
	}
}

func TestCombView(t *testing.T) {
	cb, err := NewComb(S27())
	if err != nil {
		t.Fatal(err)
	}
	if cb.Width() != 4+3 {
		t.Fatalf("width = %d", cb.Width())
	}
	if cb.ObsCount() != 1+3 {
		t.Fatalf("obs = %d", cb.ObsCount())
	}
	// Pattern bit 0..3 are PIs, 4..6 the DFFs.
	for i := 0; i < 4; i++ {
		if cb.C.Gates[cb.InputAt(i)].Type != Input {
			t.Fatalf("pattern bit %d not a PI", i)
		}
	}
	for i := 4; i < 7; i++ {
		if cb.C.Gates[cb.InputAt(i)].Type != DFF {
			t.Fatalf("pattern bit %d not a scan cell", i)
		}
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "synth", Inputs: 12, Outputs: 6, DFFs: 20, Comb: 300, Seed: 99}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	a.WriteBench(&ab)
	b.WriteBench(&bb)
	if ab.String() != bb.String() {
		t.Fatal("generator not deterministic")
	}
	n := a.Count()
	if n.Inputs != 12 || n.Outputs != 6 || n.DFFs != 20 || n.Combinational != 300 {
		t.Fatalf("counts = %+v", n)
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	for i, cfg := range []GenConfig{
		{Inputs: 0, Outputs: 1, Comb: 1},
		{Inputs: 1, Outputs: 0, Comb: 1},
		{Inputs: 1, Outputs: 1, Comb: 0},
		{Inputs: 1, Outputs: 1, Comb: 1, DFFs: -1},
		{Inputs: 1, Outputs: 1, Comb: 1, MaxFanin: 1},
		{Inputs: 1, Outputs: 99, Comb: 2},
	} {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// Property: generated circuits across seeds always validate and levelize.
func TestQuickGenerateAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		cfg := GenConfig{Name: "q", Inputs: 4, Outputs: 2, DFFs: 5, Comb: 40, Seed: seed}
		c, err := Generate(cfg)
		if err != nil {
			return false
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBenchGoldenC17(t *testing.T) {
	var buf bytes.Buffer
	if err := C17().WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"INPUT(N1)", "OUTPUT(N22)", "OUTPUT(N23)",
		"N10 = NAND(N1, N3)", "N23 = NAND(N16, N19)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestFanoutLists(t *testing.T) {
	c := C17()
	n3, _ := c.ByName("N3")
	fo := c.Fanout()[n3]
	if len(fo) != 2 {
		t.Fatalf("N3 fanout = %d, want 2", len(fo))
	}
	names := map[string]bool{}
	for _, s := range fo {
		names[c.Gates[s].Name] = true
	}
	if !names["N10"] || !names["N11"] {
		t.Fatalf("N3 fans out to %v", names)
	}
}

func TestGateTypeHelpers(t *testing.T) {
	if !Not.Inverting() || !Nand.Inverting() || !Nor.Inverting() || !Xnor.Inverting() {
		t.Error("inverting types misreported")
	}
	if And.Inverting() || Or.Inverting() || Buf.Inverting() || Xor.Inverting() {
		t.Error("non-inverting types misreported")
	}
	if And.String() != "AND" || DFF.String() != "DFF" {
		t.Errorf("type names: %v %v", And, DFF)
	}
}

func TestAddGateErrors(t *testing.T) {
	c := New("t")
	if _, err := c.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("a", Input); err == nil {
		t.Fatal("duplicate accepted")
	}
}
