package circuit

import "strings"

// S27Bench is the ISCAS89 s27 benchmark netlist — the suite's smallest
// sequential circuit (4 inputs, 1 output, 3 flip-flops, 10 gates) —
// embedded for tests and examples.
const S27Bench = `# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
`

// C17Bench is the ISCAS85 c17 benchmark — the canonical 6-NAND
// combinational example.
const C17Bench = `# c17 (ISCAS85)
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
`

// S27 parses the embedded s27 netlist.
func S27() *Circuit {
	c, err := ParseBench("s27", strings.NewReader(S27Bench))
	if err != nil {
		panic("circuit: embedded s27 invalid: " + err.Error())
	}
	return c
}

// C17 parses the embedded c17 netlist.
func C17() *Circuit {
	c, err := ParseBench("c17", strings.NewReader(C17Bench))
	if err != nil {
		panic("circuit: embedded c17 invalid: " + err.Error())
	}
	return c
}
