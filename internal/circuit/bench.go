package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads an ISCAS89-style .bench netlist:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = NAND(G0, G1)
//	G7  = DFF(G10)
//
// Forward references are allowed; OUTPUT lines may precede the gate
// definition.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	c := New(name)
	type pending struct {
		gate   int
		fanins []string
	}
	var fixups []pending
	var outputs []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(s), "INPUT("):
			n, err := parenArg(s)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if _, err := c.AddGate(n, Input); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		case strings.HasPrefix(strings.ToUpper(s), "OUTPUT("):
			n, err := parenArg(s)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			outputs = append(outputs, n)
		default:
			lhs, rhs, ok := strings.Cut(s, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: unrecognized statement %q", line, s)
			}
			gname := strings.TrimSpace(lhs)
			rhs = strings.TrimSpace(rhs)
			open := strings.IndexByte(rhs, '(')
			close := strings.LastIndexByte(rhs, ')')
			if open < 0 || close < open {
				return nil, fmt.Errorf("line %d: malformed gate %q", line, s)
			}
			tname := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			gt, err := typeByName(tname)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			var fanins []string
			for _, f := range strings.Split(rhs[open+1:close], ",") {
				fanins = append(fanins, strings.TrimSpace(f))
			}
			id, err := c.AddGate(gname, gt)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			fixups = append(fixups, pending{gate: id, fanins: fanins})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fx := range fixups {
		for _, fn := range fx.fanins {
			id, ok := c.byName[fn]
			if !ok {
				return nil, fmt.Errorf("circuit: gate %s references undefined net %q", c.Gates[fx.gate].Name, fn)
			}
			c.Gates[fx.gate].Fanin = append(c.Gates[fx.gate].Fanin, id)
		}
	}
	for _, on := range outputs {
		id, ok := c.byName[on]
		if !ok {
			return nil, fmt.Errorf("circuit: OUTPUT references undefined net %q", on)
		}
		c.MarkOutput(id)
	}
	c.fanout = nil
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parenArg(s string) (string, error) {
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("circuit: malformed declaration %q", s)
	}
	n := strings.TrimSpace(s[open+1 : close])
	if n == "" {
		return "", fmt.Errorf("circuit: empty name in %q", s)
	}
	return n, nil
}

func typeByName(s string) (GateType, error) {
	switch s {
	case "BUF", "BUFF":
		return Buf, nil
	case "NOT", "INV":
		return Not, nil
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	case "DFF":
		return DFF, nil
	}
	return 0, fmt.Errorf("circuit: unknown gate type %q", s)
}

// WriteBench renders the circuit in .bench format, stable across runs.
func (c *Circuit) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	outs := append([]int(nil), c.Outputs...)
	sort.Ints(outs)
	for _, id := range outs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	for id, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
		_ = id
	}
	return bw.Flush()
}
