package circuit

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes the synthetic netlist generator.
type GenConfig struct {
	Name     string
	Inputs   int // primary inputs
	Outputs  int // primary outputs
	DFFs     int // state elements (scan cells after insertion)
	Comb     int // combinational gates
	MaxFanin int // 2..MaxFanin inputs per multi-input gate (default 4)
	Seed     int64
}

// Validate reports whether the generator configuration is usable.
func (g GenConfig) Validate() error {
	if g.Inputs < 1 || g.Outputs < 1 || g.Comb < 1 {
		return fmt.Errorf("circuit: generator needs >=1 input, output and gate (%+v)", g)
	}
	if g.DFFs < 0 {
		return fmt.Errorf("circuit: negative DFF count")
	}
	if g.MaxFanin != 0 && g.MaxFanin < 2 {
		return fmt.Errorf("circuit: MaxFanin %d < 2", g.MaxFanin)
	}
	return nil
}

// Generate builds a random acyclic sequential netlist with the given
// shape, deterministically from the seed. Combinational gates draw their
// fanins from earlier nodes with a recency bias (creating the long,
// reconvergent cones ATPG cares about); flip-flop data inputs and primary
// outputs are drawn from the deepest third of the logic.
func Generate(cfg GenConfig) (*Circuit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxFanin := cfg.MaxFanin
	if maxFanin == 0 {
		maxFanin = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := New(cfg.Name)

	var sources []int
	for i := 0; i < cfg.Inputs; i++ {
		id, _ := c.AddGate(fmt.Sprintf("pi%d", i), Input)
		sources = append(sources, id)
	}
	// Flip-flops are declared first (their outputs are sources); data
	// inputs are patched after the logic exists.
	for i := 0; i < cfg.DFFs; i++ {
		id, _ := c.AddGate(fmt.Sprintf("ff%d", i), DFF)
		sources = append(sources, id)
	}

	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	weights := []int{20, 20, 20, 20, 8, 4, 6, 2}
	totalW := 0
	for _, w := range weights {
		totalW += w
	}

	pool := append([]int(nil), sources...)
	pickNode := func() int {
		// Recency bias: quadratic skew toward the newest nodes builds
		// depth instead of a shallow fanout soup.
		r := rng.Float64()
		idx := int(float64(len(pool)) * (1 - r*r))
		if idx >= len(pool) {
			idx = len(pool) - 1
		}
		return pool[idx]
	}

	for i := 0; i < cfg.Comb; i++ {
		w := rng.Intn(totalW)
		var gt GateType
		for k, wk := range weights {
			if w < wk {
				gt = types[k]
				break
			}
			w -= wk
		}
		nIn := 1
		if gt != Not && gt != Buf {
			nIn = 2 + rng.Intn(maxFanin-1)
			if nIn > len(pool) {
				nIn = len(pool)
			}
			if nIn < 2 { // degenerate tiny configs: fall back to an inverter
				gt, nIn = Not, 1
			}
		}
		fanin := make([]int, 0, nIn)
		for len(fanin) < nIn {
			cand := pickNode()
			dup := false
			for _, f := range fanin {
				if f == cand {
					dup = true
					break
				}
			}
			if !dup {
				fanin = append(fanin, cand)
			}
		}
		id, _ := c.AddGate(fmt.Sprintf("g%d", i), gt, fanin...)
		pool = append(pool, id)
	}

	// Deep nodes feed state and outputs.
	deep := pool[len(pool)-max(1, len(pool)/3):]
	for _, ffID := range c.DFFs {
		c.Gates[ffID].Fanin = []int{deep[rng.Intn(len(deep))]}
	}
	if cfg.Outputs > len(pool) {
		return nil, fmt.Errorf("circuit: %d outputs requested from %d nets", cfg.Outputs, len(pool))
	}
	seen := map[int]bool{}
	for len(c.Outputs) < cfg.Outputs {
		cand := deep[rng.Intn(len(deep))]
		if seen[cand] {
			// Fall back to any node when the deep pool is exhausted.
			cand = pool[rng.Intn(len(pool))]
			if seen[cand] {
				continue
			}
		}
		seen[cand] = true
		c.MarkOutput(cand)
	}
	c.fanout = nil
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: generated netlist invalid: %w", err)
	}
	return c, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
