// Package circuit models gate-level netlists in the ISCAS89 style: primary
// inputs, primary outputs, D flip-flops and basic combinational gates. It
// provides the `.bench` format reader/writer the ISCAS/ITC benchmark suites
// use, levelization of the combinational core (flip-flop outputs treated as
// pseudo primary inputs, their data inputs as pseudo primary outputs — the
// full-scan view), and a deterministic synthetic-circuit generator used to
// run the ATPG pipeline end to end where the original benchmark netlists
// are not redistributable.
package circuit

import (
	"fmt"
)

// GateType enumerates the supported primitives.
type GateType uint8

// Gate primitives (the ISCAS89 benchmark vocabulary).
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF
)

var typeNames = map[GateType]string{
	Input: "INPUT", Buf: "BUFF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR", DFF: "DFF",
}

// String returns the .bench keyword for the type.
func (t GateType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Inverting reports whether the gate complements its core function
// (NOT/NAND/NOR/XNOR).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Gate is one netlist node; its output net carries the gate's name.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int // gate ids driving this gate's inputs
}

// Circuit is a named netlist. Gate ids are indices into Gates.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // primary inputs, in declaration order
	Outputs []int // gates whose output is a primary output
	DFFs    []int // state elements, in declaration order

	byName map[string]int
	fanout [][]int
}

// New returns an empty circuit.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// AddGate appends a gate and returns its id. Fanin ids must already
// exist except when patched later via SetFanin (the .bench parser needs
// forward references).
func (c *Circuit) AddGate(name string, t GateType, fanin ...int) (int, error) {
	if _, dup := c.byName[name]; dup {
		return 0, fmt.Errorf("circuit: duplicate gate %q", name)
	}
	id := len(c.Gates)
	c.Gates = append(c.Gates, Gate{Name: name, Type: t, Fanin: fanin})
	c.byName[name] = id
	c.fanout = nil
	switch t {
	case Input:
		c.Inputs = append(c.Inputs, id)
	case DFF:
		c.DFFs = append(c.DFFs, id)
	}
	return id, nil
}

// MarkOutput declares gate id a primary output.
func (c *Circuit) MarkOutput(id int) { c.Outputs = append(c.Outputs, id) }

// ByName resolves a gate name.
func (c *Circuit) ByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// Fanout returns the fanout lists, computed lazily.
func (c *Circuit) Fanout() [][]int {
	if c.fanout == nil {
		c.fanout = make([][]int, len(c.Gates))
		for id, g := range c.Gates {
			for _, f := range g.Fanin {
				c.fanout[f] = append(c.fanout[f], id)
			}
		}
	}
	return c.fanout
}

// Counts summarizes the netlist.
type Counts struct {
	Gates, Inputs, Outputs, DFFs, Combinational int
}

// Count tallies the netlist.
func (c *Circuit) Count() Counts {
	n := Counts{Gates: len(c.Gates), Inputs: len(c.Inputs), Outputs: len(c.Outputs), DFFs: len(c.DFFs)}
	n.Combinational = n.Gates - n.Inputs - n.DFFs
	return n
}

// Validate checks structural sanity: fanin ids in range, gates have the
// right arity, names unique (by construction), and the combinational core
// is acyclic.
func (c *Circuit) Validate() error {
	for id, g := range c.Gates {
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("circuit: gate %s fanin %d out of range", g.Name, f)
			}
		}
		switch g.Type {
		case Input:
			if len(g.Fanin) != 0 {
				return fmt.Errorf("circuit: input %s has fanin", g.Name)
			}
		case Buf, Not, DFF:
			if len(g.Fanin) != 1 {
				return fmt.Errorf("circuit: %s %s needs exactly 1 fanin, has %d", g.Type, g.Name, len(g.Fanin))
			}
		default:
			if len(g.Fanin) < 2 {
				return fmt.Errorf("circuit: %s %s needs >= 2 fanins, has %d", g.Type, g.Name, len(g.Fanin))
			}
		}
		_ = id
	}
	_, err := c.Levelize()
	return err
}

// Levelize returns a topological order of the combinational core: primary
// inputs and flip-flop outputs are sources; every other gate appears
// after all its fanins. Combinational cycles are an error.
func (c *Circuit) Levelize() ([]int, error) {
	n := len(c.Gates)
	indeg := make([]int, n)
	for id, g := range c.Gates {
		if g.Type == Input || g.Type == DFF {
			continue // sources in the combinational view
		}
		indeg[id] = len(g.Fanin)
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for id := range c.Gates {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	fanout := c.Fanout()
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range fanout[id] {
			if c.Gates[s].Type == Input || c.Gates[s].Type == DFF {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("circuit: combinational cycle (%d of %d gates ordered)", len(order), n)
	}
	return order, nil
}

// Comb is the full-scan combinational view of a circuit: flip-flop
// outputs are pseudo primary inputs, flip-flop data inputs are pseudo
// primary outputs. Test patterns address PIs then PPIs, in order.
type Comb struct {
	C     *Circuit
	Order []int // levelized evaluation order

	// PatternFor maps pattern bit positions: positions [0,len(PIs)) are
	// the primary inputs, positions [len(PIs), Width) the scan cells.
	PIs  []int // primary input gate ids
	PPIs []int // DFF gate ids (pseudo inputs)

	// Observation points: primary outputs then pseudo outputs (the nets
	// feeding each DFF, in DFF order).
	POs  []int
	PPOs []int
}

// NewComb builds the full-scan view.
func NewComb(c *Circuit) (*Comb, error) {
	order, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	cb := &Comb{C: c, Order: order, PIs: c.Inputs, PPIs: c.DFFs}
	cb.POs = c.Outputs
	for _, d := range c.DFFs {
		cb.PPOs = append(cb.PPOs, c.Gates[d].Fanin[0])
	}
	return cb, nil
}

// Width returns the test-pattern width: one bit per PI and per scan cell.
func (cb *Comb) Width() int { return len(cb.PIs) + len(cb.PPIs) }

// InputAt returns the gate id addressed by pattern bit i.
func (cb *Comb) InputAt(i int) int {
	if i < len(cb.PIs) {
		return cb.PIs[i]
	}
	return cb.PPIs[i-len(cb.PIs)]
}

// ObsCount returns the number of observation points (POs + PPOs).
func (cb *Comb) ObsCount() int { return len(cb.POs) + len(cb.PPOs) }

// ObsAt returns the gate id observed at index i.
func (cb *Comb) ObsAt(i int) int {
	if i < len(cb.POs) {
		return cb.POs[i]
	}
	return cb.PPOs[i-len(cb.POs)]
}
