// Package bench provides the evaluation workloads: a registry of
// ISCAS89/ITC99 benchmark profiles and a deterministic test-cube
// generator calibrated to them.
//
// The paper compressed test sets produced by commercial ATPG (Synopsys
// DFT Compiler + TetraMAX) on the ISCAS89 and ITC99 circuits. Those exact
// vector files are not redistributable, so each circuit is represented
// here by a *profile* — scan length, pattern count, don't-care density
// and dictionary size, taken from the paper and from the MinTest-era
// literature the comparison rows rely on — and a generator that
// synthesizes a cube set with the same three properties that drive
// compression behaviour:
//
//  1. overall X density (Table 3's primary correlate of compression),
//  2. clustered care bits (ATPG assigns contiguous cone inputs), and
//  3. cross-pattern repetition (faults in one cone need similar
//     assignments in many patterns), modeled by a Zipf-reused cluster
//     library.
//
// Generation is fully deterministic per profile. A genuinely end-to-end
// alternative — synthetic netlist, scan insertion, PODEM — lives in the
// circuit/atpg packages; it produces the same qualitative structure and
// is exercised by the soc_flow example and integration tests.
package bench

import (
	"fmt"
	"math/rand"

	"lzwtc/internal/bitvec"
)

// Profile describes one benchmark circuit's test set.
type Profile struct {
	Name     string
	Suite    string  // "ISCAS89" or "ITC99"
	ScanLen  int     // bits per scan pattern (scan cells + primary inputs)
	Patterns int     // deterministic pattern count
	XDensity float64 // published don't-care fraction of the test set
	DictSize int     // N used for this circuit in the paper's Table 3
	Seed     int64   // generator seed (fixed per profile)
}

// TotalBits returns the uncompressed test-set volume.
func (p Profile) TotalBits() int { return p.ScanLen * p.Patterns }

// profiles lists the twelve circuits of Table 3. Scan geometry for the
// ISCAS89 circuits follows the MinTest-era test sets used throughout the
// test-compression literature; ITC99 geometry is sized from the circuits'
// flip-flop counts and the paper's dictionary choices.
var profiles = []Profile{
	{Name: "s5378", Suite: "ISCAS89", ScanLen: 214, Patterns: 111, XDensity: 0.7262, DictSize: 1024, Seed: 5378},
	{Name: "s9234", Suite: "ISCAS89", ScanLen: 247, Patterns: 159, XDensity: 0.7300, DictSize: 1024, Seed: 9234},
	{Name: "s13207", Suite: "ISCAS89", ScanLen: 700, Patterns: 236, XDensity: 0.9350, DictSize: 1024, Seed: 13207},
	{Name: "s15850", Suite: "ISCAS89", ScanLen: 611, Patterns: 126, XDensity: 0.8356, DictSize: 1024, Seed: 15850},
	{Name: "s35932", Suite: "ISCAS89", ScanLen: 1763, Patterns: 16, XDensity: 0.3530, DictSize: 128, Seed: 35932},
	{Name: "s38417", Suite: "ISCAS89", ScanLen: 1664, Patterns: 99, XDensity: 0.6880, DictSize: 2048, Seed: 38417},
	{Name: "s38584", Suite: "ISCAS89", ScanLen: 1464, Patterns: 136, XDensity: 0.8228, DictSize: 2048, Seed: 38584},
	{Name: "b14", Suite: "ITC99", ScanLen: 277, Patterns: 420, XDensity: 0.9240, DictSize: 512, Seed: 114},
	{Name: "b15", Suite: "ITC99", ScanLen: 485, Patterns: 410, XDensity: 0.9080, DictSize: 256, Seed: 115},
	{Name: "b17", Suite: "ITC99", ScanLen: 1415, Patterns: 640, XDensity: 0.8240, DictSize: 512, Seed: 117},
	{Name: "b20", Suite: "ITC99", ScanLen: 527, Patterns: 470, XDensity: 0.9200, DictSize: 1024, Seed: 120},
	{Name: "b22", Suite: "ITC99", ScanLen: 767, Patterns: 450, XDensity: 0.9060, DictSize: 512, Seed: 122},
}

// Profiles returns all Table 3 profiles in paper order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Table1Names lists the five circuits of Tables 1, 2, 4, 5 and 6.
func Table1Names() []string {
	return []string{"s13207", "s15850", "s38417", "s38584", "s9234"}
}

// ByName looks a profile up.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("bench: unknown circuit %q", name)
}

// cluster is a contiguous care-bit footprint at a fixed scan offset —
// the positions one fault's cone requirement assigns in a cube.
type cluster struct {
	offset, length int
}

// Generate synthesizes the profile's cube set. It is deterministic:
// repeated calls return equal sets.
//
// The model: every scan position has a preferred value (the
// non-controlling value its fault cones demand), and each cube is a union
// of care clusters — contiguous cone footprints — whose bits take the
// preferred value with a small flip probability (different faults
// occasionally demand the opposite polarity). Cluster offsets are partly
// reused from a growing library (the same cone is re-targeted by many
// faults over the whole test set), so repeats are long-range and
// imperfect: the structure a global LZW dictionary exploits better than a
// bounded LZ77 window or a run-length coder.
func (p Profile) Generate() *bitvec.CubeSet {
	rng := rand.New(rand.NewSource(p.Seed))
	cs := bitvec.NewCubeSet(p.ScanLen)
	careTarget := int(float64(p.ScanLen) * (1 - p.XDensity))
	if careTarget < 1 {
		careTarget = 1
	}

	// Preferred value per scan position, skewed toward 0 (matching the
	// published RLE behaviour on 0-filled streams).
	pref := make([]bitvec.Bit, p.ScanLen)
	for i := range pref {
		if rng.Float64() < 0.25 {
			pref[i] = bitvec.One
		}
	}

	const (
		flipProb     = 0.005 // residual per-bit noise between faults
		polarityProb = 0.35  // chance a cluster use inverts its whole footprint
		reuseProb    = 0.85  // chance a cluster re-targets a known cone
		coneGroups   = 8     // fault-ordering phases (see below)
		groupProb    = 0.80  // chance a cluster comes from the pattern's phase group
	)

	// The cone vocabulary must cover the per-pattern care demand a few
	// times over, or patterns could not differ; beyond that, a small
	// vocabulary is what compacted ATPG sets look like.
	maxCones := 4 * careTarget / 20
	if maxCones < 16 {
		maxCones = 16
	}

	var library []cluster // recorded cone footprints (offset + length)

	newCluster := func() cluster {
		length := 4 + geometric(rng, 0.045) // mean ~25 care bits
		if length > p.ScanLen {
			length = p.ScanLen
		}
		return cluster{offset: rng.Intn(p.ScanLen - length + 1), length: length}
	}

	for pat := 0; pat < p.Patterns; pat++ {
		cube := bitvec.New(p.ScanLen)
		care := 0
		// ATPG fault ordering: consecutive patterns target different cone
		// groups, and a group is revisited only coneGroups patterns later —
		// far outside a scan-chain-length LZ77 window but squarely inside
		// the global LZW dictionary.
		group := pat % coneGroups
		stale := 0
		for care < careTarget {
			var c cluster
			if stale < 8 && len(library) > 1 && (len(library) >= maxCones || rng.Float64() < reuseProb) {
				if rng.Float64() < groupProb && len(library) > group {
					// Draw from the pattern's phase group.
					idx := group + coneGroups*rng.Intn(1+(len(library)-1-group)/coneGroups)
					c = library[idx]
				} else {
					c = library[rng.Intn(len(library))]
				}
			} else {
				c = newCluster()
				library = append(library, c)
				stale = 0
			}
			// Fault polarity: some faults demand the opposite value on the
			// whole shared cone footprint. The dictionary learns both
			// variants as alternative branches; a window or run coder
			// cannot.
			var polarity bitvec.Bit
			if rng.Float64() < polarityProb {
				polarity = 1
			}
			before := care
			for i := 0; i < c.length && care < careTarget; i++ {
				pos := c.offset + i
				b := pref[pos] ^ polarity
				if rng.Float64() < flipProb {
					b ^= 1
				}
				if cube.Get(pos) == bitvec.X {
					care++
				}
				cube.Set(pos, b)
			}
			// Force a fresh cone if reuse stops adding coverage, so the
			// loop always progresses toward the care target.
			if care == before {
				stale++
			} else {
				stale = 0
			}
		}
		if err := cs.Add(cube); err != nil {
			panic(err) // generator constructs correct widths by design
		}
	}
	return cs
}

// geometric samples a geometric variate with success probability q
// (mean ~ (1-q)/q).
func geometric(rng *rand.Rand, q float64) int {
	n := 0
	for rng.Float64() > q {
		n++
	}
	return n
}
