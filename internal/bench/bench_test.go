package bench

import (
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("got %d profiles, want 12 (Table 3)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.ScanLen <= 0 || p.Patterns <= 0 || p.DictSize <= 0 {
			t.Errorf("%s: bad geometry %+v", p.Name, p)
		}
		if p.XDensity <= 0 || p.XDensity >= 1 {
			t.Errorf("%s: bad X density %v", p.Name, p.XDensity)
		}
	}
	for _, name := range Table1Names() {
		if !seen[name] {
			t.Errorf("Table 1 circuit %s missing from profiles", name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("s13207")
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBits() != 700*236 {
		t.Fatalf("s13207 volume = %d", p.TotalBits())
	}
	if _, err := ByName("c6288"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("s5378")
	a := p.Generate()
	b := p.Generate()
	if len(a.Cubes) != len(b.Cubes) {
		t.Fatal("pattern counts differ across runs")
	}
	for i := range a.Cubes {
		if !a.Cubes[i].Equal(b.Cubes[i]) {
			t.Fatalf("cube %d differs across runs", i)
		}
	}
}

func TestGenerateMatchesProfile(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cs := p.Generate()
			if cs.TotalBits() != p.TotalBits() {
				t.Fatalf("volume %d, want %d", cs.TotalBits(), p.TotalBits())
			}
			if len(cs.Cubes) != p.Patterns {
				t.Fatalf("patterns %d, want %d", len(cs.Cubes), p.Patterns)
			}
			got := cs.XDensity()
			if diff := got - p.XDensity; diff > 0.02 || diff < -0.04 {
				t.Errorf("X density %.4f, want %.4f +-(0.04,0.02)", got, p.XDensity)
			}
		})
	}
}

func TestGeneratedCubesAreClustered(t *testing.T) {
	// Care bits must arrive in runs, not salt-and-pepper: the mean care
	// run length should comfortably exceed the Bernoulli expectation.
	p, _ := ByName("s13207")
	cs := p.Generate()
	runs, total := 0, 0
	for _, c := range cs.Cubes {
		in := false
		for i := 0; i < c.Len(); i++ {
			care := c.Get(i) != bitvec.X
			if care {
				total++
				if !in {
					runs++
					in = true
				}
			} else {
				in = false
			}
		}
	}
	mean := float64(total) / float64(runs)
	if mean < 3 {
		t.Fatalf("mean care run %.2f, want clustered (>= 3)", mean)
	}
}

func TestHeadlineCompressionBand(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation in -short mode")
	}
	// The reproduction target for s13207 (Table 1: 80.69%): the generated
	// workload must land in the published band under the paper's
	// configuration, and well above the no-dictionary floor.
	p, _ := ByName("s13207")
	stream := p.Generate().SerializeAligned(7)
	cfg := core.Config{CharBits: 7, DictSize: p.DictSize, EntryBits: 63}
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := 1 - float64(res.Stats.CompressedBits)/float64(p.TotalBits())
	if r < 0.74 || r > 0.88 {
		t.Fatalf("s13207 LZW ratio %.4f outside published band [0.74,0.88]", r)
	}
}

func BenchmarkGenerateS13207(b *testing.B) {
	p, _ := ByName("s13207")
	for i := 0; i < b.N; i++ {
		p.Generate()
	}
}
