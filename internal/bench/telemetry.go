package bench

import (
	"lzwtc/internal/bitvec"
	"lzwtc/internal/telemetry"
)

// EventProfile is the per-profile record GenerateObserved emits: the
// circuit's Table 3 parameters plus the generated set's actual X
// density, so drift between the published density and the synthetic
// set is visible in the event stream.
const EventProfile = "bench.profile"

// Registry metric names for workload generation.
const (
	MetricCubeSets      = "lzwtc_bench_cubesets_total"
	MetricGeneratedBits = "lzwtc_bench_generated_bits_total"
)

// GenerateObserved is Generate instrumented through a telemetry
// recorder: the generation runs under a "bench.generate" span and emits
// one EventProfile record. A nil recorder reduces to Generate.
func (p Profile) GenerateObserved(rec *telemetry.Recorder) *bitvec.CubeSet {
	sp := rec.Span("bench.generate")
	cs := p.Generate()
	if reg := rec.Registry(); reg != nil {
		reg.Counter(MetricCubeSets, "benchmark cube sets generated").Inc()
		reg.Counter(MetricGeneratedBits, "benchmark scan bits generated").Add(int64(p.TotalBits()))
	}
	rec.Emit(EventProfile,
		telemetry.F("circuit", p.Name),
		telemetry.F("suite", p.Suite),
		telemetry.F("scan_len", p.ScanLen),
		telemetry.F("patterns", p.Patterns),
		telemetry.F("total_bits", p.TotalBits()),
		telemetry.F("x_density_target", p.XDensity),
		telemetry.F("x_density_actual", cs.XDensity()),
		telemetry.F("dict_size", p.DictSize),
	)
	sp.End(telemetry.F("circuit", p.Name))
	return cs
}
