package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
)

// This file is the single-stream performance harness behind `make
// bench-json`: a fixed grid of compressor workloads (character size ×
// don't-care density), measured as ns/char, MB/s and allocs/op for both
// compression and decompression. The grid is deterministic so reports
// from different revisions of the code are comparable point by point —
// the committed BENCH_*.json trajectory is built from exactly these
// cases, and the CI regression gate diffs a fresh run against it.

// PerfSchema versions the report format; bump it when the JSON shape or
// the case grid changes incompatibly.
const PerfSchema = "lzwtc-bench/2"

// DefaultPerfBits is the per-case stream length used by the committed
// trajectory: long enough to fill a 1024-code dictionary several times
// over (FullReset churn included), short enough that the whole grid runs
// in seconds.
const DefaultPerfBits = 1 << 17

// PerfCase is one point of the benchmark grid.
type PerfCase struct {
	Name     string  `json:"name"`
	CharBits int     `json:"char_bits"`
	DictSize int     `json:"dict_size"`
	XDensity float64 `json:"x_density"`
	// Gen selects the stream generator: "" (= "blocks") is the repeated
	// 96-bit block library; "chain" is the deep-sibling shape (a fixed
	// anchor character followed by a uniform random one), which drives a
	// single parent's child chain toward 2^C_C lanes and exercises the
	// multi-block match kernel the block library rarely reaches.
	Gen string `json:"gen,omitempty"`
}

// Config returns the compressor configuration the case is measured
// under. FullReset keeps the dictionary churning on long streams (the
// reset path is part of what the harness times) and FillRepeat is the
// most expensive residual fill, so the numbers are conservative.
func (c PerfCase) Config() core.Config {
	return core.Config{
		CharBits: c.CharBits,
		DictSize: c.DictSize,
		Fill:     core.FillRepeat,
		Tie:      core.TieOldest,
		Full:     core.FullReset,
	}
}

// PerfCases returns the fixed measurement grid: C_C ∈ {2,4,8} crossed
// with don't-care densities {0%, 50%, 90%}. The 90% column is the
// paper-realistic regime (Table 3 circuits run 35–93% X) and the hot
// one: nearly every lookup is X-laden.
func PerfCases() []PerfCase {
	var cases []PerfCase
	for _, cc := range []int{2, 4, 8} {
		for _, x := range []float64{0, 0.5, 0.9} {
			cases = append(cases, PerfCase{
				Name:     fmt.Sprintf("cc%d_x%02d", cc, int(x*100)),
				CharBits: cc,
				DictSize: 1024,
				XDensity: x,
			})
		}
	}
	// Stress corners beyond the C_C × density square: near-total X
	// (nearly every query is all-X or single-bit-cared), a wide
	// word-straddling character over a dictionary past the direct block
	// layout's bound (the dense-arena kernel path), and two chain-heavy
	// shapes whose sibling chains cross 64-lane block boundaries.
	cases = append(cases,
		PerfCase{Name: "cc8_x99", CharBits: 8, DictSize: 1024, XDensity: 0.99},
		PerfCase{Name: "cc12_x90", CharBits: 12, DictSize: 8192, XDensity: 0.9},
		PerfCase{Name: "cc8_chain50", CharBits: 8, DictSize: 1024, XDensity: 0.5, Gen: "chain"},
		PerfCase{Name: "cc8_chain90", CharBits: 8, DictSize: 1024, XDensity: 0.9, Gen: "chain"},
	)
	return cases
}

// Stream synthesizes the case's input per its generator (see
// PerfCase.Gen): block-structured repetition punctured to the case's X
// density, or the chain-heavy anchor shape. Fully deterministic per
// case.
func (c PerfCase) Stream(totalBits int) *bitvec.Vector {
	rng := rand.New(rand.NewSource(int64(c.CharBits)*1000 + int64(c.XDensity*100)))
	if c.Gen == "chain" {
		return c.chainStream(rng, totalBits)
	}
	const nBlocks, blockBits = 24, 96
	blocks := make([][]bitvec.Bit, nBlocks)
	for i := range blocks {
		b := make([]bitvec.Bit, blockBits)
		for j := range b {
			if rng.Float64() < 0.3 {
				b[j] = bitvec.One
			}
		}
		blocks[i] = b
	}
	v := bitvec.New(totalBits)
	pos := 0
	for pos < totalBits {
		blk := blocks[rng.Intn(nBlocks)]
		for _, bit := range blk {
			if pos >= totalBits {
				break
			}
			if rng.Float64() >= c.XDensity {
				v.Set(pos, bit)
			}
			pos++
		}
	}
	return v
}

// chainStream emits [anchor, random-character] pairs punctured to the
// case's X density. Almost every two-character string starts at the
// fixed anchor, so the anchor literal's child chain fills toward 2^C_C
// lanes — sibling chains spanning multiple 64-lane plane blocks, the
// shape the square grid's block streams rarely produce.
func (c PerfCase) chainStream(rng *rand.Rand, totalBits int) *bitvec.Vector {
	cc := c.CharBits
	anchor := make([]bitvec.Bit, cc)
	for j := range anchor {
		if j%2 == 0 {
			anchor[j] = bitvec.One
		}
	}
	v := bitvec.New(totalBits)
	pos := 0
	for pos < totalBits {
		for j := 0; j < cc && pos < totalBits; j++ {
			if rng.Float64() >= c.XDensity {
				v.Set(pos, anchor[j])
			}
			pos++
		}
		for j := 0; j < cc && pos < totalBits; j++ {
			b := bitvec.Zero
			if rng.Intn(2) == 1 {
				b = bitvec.One
			}
			if rng.Float64() >= c.XDensity {
				v.Set(pos, b)
			}
			pos++
		}
	}
	return v
}

// PerfMeasurement is one direction's measured rates.
type PerfMeasurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerChar   float64 `json:"ns_per_char"`
	MBPerSec    float64 `json:"mb_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// PerfResult is one grid point's measurements.
type PerfResult struct {
	Case       PerfCase        `json:"case"`
	Chars      int             `json:"chars"`
	InputBits  int             `json:"input_bits"`
	Ratio      float64         `json:"ratio"`
	Compress   PerfMeasurement `json:"compress"`
	Decompress PerfMeasurement `json:"decompress"`
}

// PerfReport is the whole trajectory point: every grid case measured on
// one machine at one revision.
type PerfReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	Generated  string       `json:"generated,omitempty"`
	StreamBits int          `json:"stream_bits"`
	Results    []PerfResult `json:"results"`
}

// RunPerf measures every grid case on streams of totalBits bits,
// spending at least minDur of timed iterations per direction per case.
func RunPerf(totalBits int, minDur time.Duration) (*PerfReport, error) {
	if totalBits <= 0 {
		totalBits = DefaultPerfBits
	}
	rep := &PerfReport{Schema: PerfSchema, GoVersion: runtime.Version(), StreamBits: totalBits}
	for _, pc := range PerfCases() {
		r, err := runPerfCase(pc, totalBits, minDur)
		if err != nil {
			return nil, fmt.Errorf("bench: case %s: %w", pc.Name, err)
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

func runPerfCase(pc PerfCase, totalBits int, minDur time.Duration) (PerfResult, error) {
	cfg := pc.Config()
	stream := pc.Stream(totalBits)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		return PerfResult{}, err
	}
	chars := res.Stats.Chars
	out := PerfResult{Case: pc, Chars: chars, InputBits: totalBits, Ratio: res.Stats.Ratio()}

	var opErr error
	comp := measure(minDur, func() {
		if _, e := core.Compress(stream, cfg); e != nil {
			opErr = e
		}
	})
	if opErr != nil {
		return PerfResult{}, opErr
	}
	out.Compress = finishMeasurement(comp, chars, totalBits)

	dec := measure(minDur, func() {
		if _, e := core.Decompress(res.Codes, cfg, res.InputBits); e != nil {
			opErr = e
		}
	})
	if opErr != nil {
		return PerfResult{}, opErr
	}
	out.Decompress = finishMeasurement(dec, chars, totalBits)
	return out, nil
}

// rawMeasure is the pre-normalization output of measure.
type rawMeasure struct {
	nsPerOp     float64
	allocsPerOp float64
}

// measure times op until at least minDur of work (and at least 3
// iterations) has accumulated, reporting mean wall time and mean heap
// allocations per call. One warmup call precedes timing so one-time
// lazy initialization never lands in the numbers.
func measure(minDur time.Duration, op func()) rawMeasure {
	op() // warmup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for time.Since(start) < minDur || iters < 3 {
		op()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return rawMeasure{
		nsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		allocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
	}
}

func finishMeasurement(m rawMeasure, chars, inputBits int) PerfMeasurement {
	out := PerfMeasurement{NsPerOp: m.nsPerOp, AllocsPerOp: m.allocsPerOp}
	if chars > 0 {
		out.NsPerChar = m.nsPerOp / float64(chars)
	}
	if m.nsPerOp > 0 {
		bytes := float64(inputBits) / 8
		out.MBPerSec = bytes / (m.nsPerOp / 1e9) / 1e6
	}
	return out
}

// ComparePerf diffs a fresh report against a committed baseline: for
// every baseline case present in the fresh run, compress ns/char must
// not exceed baseline*(1+tolerance). It returns one line per case
// (human-readable, benchstat-style old → new) and the list of failures.
func ComparePerf(baseline, fresh *PerfReport, tolerance float64) (lines []string, failures []string) {
	freshBy := map[string]PerfResult{}
	for _, r := range fresh.Results {
		freshBy[r.Case.Name] = r
	}
	for _, b := range baseline.Results {
		f, ok := freshBy[b.Case.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh run", b.Case.Name))
			continue
		}
		delta := 0.0
		if b.Compress.NsPerChar > 0 {
			delta = f.Compress.NsPerChar/b.Compress.NsPerChar - 1
		}
		lines = append(lines, fmt.Sprintf("%-9s compress %8.2f → %8.2f ns/char (%+6.1f%%)  decompress %7.2f → %7.2f ns/char",
			b.Case.Name, b.Compress.NsPerChar, f.Compress.NsPerChar, 100*delta,
			b.Decompress.NsPerChar, f.Decompress.NsPerChar))
		if delta > tolerance {
			failures = append(failures, fmt.Sprintf("%s: compress ns/char regressed %.1f%% (limit %.1f%%)",
				b.Case.Name, 100*delta, 100*tolerance))
		}
	}
	return lines, failures
}
