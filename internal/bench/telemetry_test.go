package bench

import (
	"testing"

	"lzwtc/internal/telemetry"
)

func TestGenerateObserved(t *testing.T) {
	p, err := ByName("s5378")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	var events []telemetry.Event
	rec := telemetry.New(reg, telemetry.SinkFunc(func(ev telemetry.Event) { events = append(events, ev) }))
	cs := p.GenerateObserved(rec)

	// Observed generation must be the same deterministic set.
	if plain := p.Generate(); plain.XDensity() != cs.XDensity() {
		t.Fatal("GenerateObserved produced a different cube set")
	}
	if got := reg.Counter(MetricCubeSets, "").Value(); got != 1 {
		t.Fatalf("cubesets counter = %d, want 1", got)
	}
	if got := reg.Counter(MetricGeneratedBits, "").Value(); got != int64(p.TotalBits()) {
		t.Fatalf("generated-bits counter = %d, want %d", got, p.TotalBits())
	}
	var profile *telemetry.Event
	for i := range events {
		if events[i].Kind == EventProfile {
			profile = &events[i]
		}
	}
	if profile == nil {
		t.Fatalf("no %s event; events: %+v", EventProfile, events)
	}
	if name, _ := profile.Field("circuit"); name != "s5378" {
		t.Fatalf("profile event circuit = %v", name)
	}
	if actual, ok := profile.Field("x_density_actual"); !ok || actual.(float64) <= 0 {
		t.Fatalf("profile event x_density_actual = %v, %v", actual, ok)
	}
}

func TestGenerateObservedNilRecorder(t *testing.T) {
	p, err := ByName("s35932")
	if err != nil {
		t.Fatal(err)
	}
	if p.GenerateObserved(nil).XDensity() != p.Generate().XDensity() {
		t.Fatal("GenerateObserved(nil) differs from Generate")
	}
}
