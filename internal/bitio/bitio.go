// Package bitio provides MSB-first bit-level readers and writers used to
// pack fixed-width LZW codes, LZ77 tokens and run-length codewords into
// byte streams.
//
// All widths are in bits. A value written with WriteBits(v, n) occupies the
// next n bit positions of the stream, most significant bit first, so the
// byte stream is identical to what a hardware serializer shifting MSB-first
// would produce.
package bitio

import (
	"errors"
	"fmt"

	"lzwtc/internal/invariant"
)

// ErrUnexpectedEOF is returned by Reader when fewer bits remain than
// requested.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// Writer accumulates bits MSB-first into an in-memory byte buffer.
// The zero value is an empty writer ready for use.
type Writer struct {
	buf   []byte
	acc   uint64 // pending bits, left-aligned within the low `nacc` bits
	nacc  uint   // number of pending bits in acc
	nbits int    // total bits written
}

// WriteBits appends the low n bits of v to the stream, MSB first.
// n must be in [0, 64]; bits of v above position n-1 are ignored.
func (w *Writer) WriteBits(v uint64, n int) {
	invariant.Check(n >= 0 && n <= 64, "bitio: WriteBits width %d out of range", n)
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << uint(n)) - 1
	}
	w.nbits += n
	// Feed bits from the most significant end of the n-bit field.
	for n > 0 {
		free := 8 - w.nacc%8
		take := uint(n)
		if take > free {
			take = free
		}
		chunk := (v >> uint(n-int(take))) & ((1 << take) - 1)
		w.acc = w.acc<<take | chunk
		w.nacc += take
		n -= int(take)
		if w.nacc%8 == 0 {
			w.buf = append(w.buf, byte(w.acc))
			w.acc = 0
			w.nacc = 0
		}
	}
}

// WriteBit appends a single bit (any nonzero b writes 1).
func (w *Writer) WriteBit(b uint) {
	if b != 0 {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return w.nbits }

// Bytes returns the packed stream. The final partial byte, if any, is
// zero-padded on the right. The returned slice is valid until the next
// write.
func (w *Writer) Bytes() []byte {
	if w.nacc == 0 {
		return w.buf
	}
	pad := 8 - w.nacc
	last := byte(w.acc << pad)
	return append(w.buf[:len(w.buf):len(w.buf)], last)
}

// Reset discards all written bits.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
	w.nbits = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position of next read
	lim int // total readable bits
}

// NewReader returns a Reader over buf exposing nbits readable bits.
// If nbits is negative, all of buf (8*len(buf) bits) is readable.
func NewReader(buf []byte, nbits int) *Reader {
	if nbits < 0 || nbits > 8*len(buf) {
		nbits = 8 * len(buf)
	}
	return &Reader{buf: buf, lim: nbits}
}

// ReadBits reads the next n bits (n in [0,64]) as an unsigned integer,
// MSB first.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits width %d out of range", n)
	}
	if r.pos+n > r.lim {
		return 0, ErrUnexpectedEOF
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos / 8
		bitOff := uint(r.pos % 8)
		avail := 8 - bitOff
		take := uint(n)
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.pos += int(take)
		n -= int(take)
	}
	return v, nil
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// Remaining reports how many readable bits are left.
func (r *Reader) Remaining() int { return r.lim - r.pos }

// Pos reports the current bit offset from the start of the stream.
func (r *Reader) Pos() int { return r.pos }
