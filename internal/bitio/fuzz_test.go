package bitio

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzBitio drives Writer/Reader with an op stream decoded from the
// fuzz input: each 9-byte record is one WriteBits call — byte 0 selects
// the width (mod 65, so 0..64 inclusive), bytes 1..8 are the
// little-endian value. Every value written must read back exactly
// (masked to its width), and reading past the end must fail with
// ErrUnexpectedEOF.
func FuzzBitio(f *testing.F) {
	op := func(width byte, v uint64) []byte {
		rec := make([]byte, 9)
		rec[0] = width
		binary.LittleEndian.PutUint64(rec[1:], v)
		return rec
	}
	cat := func(recs ...[]byte) []byte {
		var out []byte
		for _, r := range recs {
			out = append(out, r...)
		}
		return out
	}
	f.Add([]byte{})                                  // no ops
	f.Add(op(64, ^uint64(0)))                        // single max-width all-ones op
	f.Add(op(1, 1))                                  // single bit
	f.Add(op(0, 0x1234))                             // zero-width no-op
	f.Add(cat(op(7, 0x55), op(10, 0x3ff), op(3, 5))) // the paper's C_C/C_E widths
	f.Add(cat(op(64, 0), op(64, ^uint64(0)), op(33, 1<<32)))
	f.Add(cat(op(8, 0xff), op(8, 0x00), op(8, 0xaa), op(8, 0x55)))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 512
		type rec struct {
			n int
			v uint64
		}
		var ops []rec
		for len(data) >= 9 && len(ops) < maxOps {
			ops = append(ops, rec{n: int(data[0] % 65), v: binary.LittleEndian.Uint64(data[1:9])})
			data = data[9:]
		}

		var w Writer
		total := 0
		for _, o := range ops {
			w.WriteBits(o.v, o.n)
			total += o.n
		}
		if w.BitLen() != total {
			t.Fatalf("BitLen = %d after writing %d bits", w.BitLen(), total)
		}
		buf := w.Bytes()
		if want := (total + 7) / 8; len(buf) != want {
			t.Fatalf("Bytes() returned %d bytes for %d bits, want %d", len(buf), total, want)
		}

		r := NewReader(buf, w.BitLen())
		for i, o := range ops {
			got, err := r.ReadBits(o.n)
			if err != nil {
				t.Fatalf("op %d: ReadBits(%d): %v", i, o.n, err)
			}
			want := o.v
			if o.n < 64 {
				want &= 1<<uint(o.n) - 1
			}
			if got != want {
				t.Fatalf("op %d: ReadBits(%d) = %#x, want %#x", i, o.n, got, want)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bits remain after reading everything back", r.Remaining())
		}
		if _, err := r.ReadBits(1); !errors.Is(err, ErrUnexpectedEOF) {
			t.Fatalf("over-read returned %v, want ErrUnexpectedEOF", err)
		}
	})
}
