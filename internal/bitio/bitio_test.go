package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	vals := []struct {
		v uint64
		n int
	}{
		{0b1, 1}, {0b0, 1}, {0b101, 3}, {0xFF, 8}, {0x1234, 16},
		{0x7, 7}, {0xDEADBEEF, 32}, {1<<63 | 1, 64}, {0, 5},
	}
	for _, x := range vals {
		w.WriteBits(x.v, x.n)
	}
	r := NewReader(w.Bytes(), w.BitLen())
	for i, x := range vals {
		got, err := r.ReadBits(x.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := x.v
		if x.n < 64 {
			want &= (1 << uint(x.n)) - 1
		}
		if got != want {
			t.Errorf("read %d: got %#x want %#x (width %d)", i, got, want, x.n)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", r.Remaining())
	}
}

func TestMSBFirstLayout(t *testing.T) {
	var w Writer
	w.WriteBits(0b1, 1)
	w.WriteBits(0b01, 2)
	w.WriteBits(0b10110, 5)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10110110 {
		t.Fatalf("bytes = %08b, want 10110110", b)
	}
}

func TestPartialBytePadding(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10100000 {
		t.Fatalf("bytes = %08b, want 10100000", b)
	}
	if w.BitLen() != 3 {
		t.Fatalf("BitLen = %d, want 3", w.BitLen())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xFF}, 3)
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadBits(3); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xABCD, 16)
	w.Reset()
	if w.BitLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("after Reset: BitLen=%d len(Bytes)=%d", w.BitLen(), len(w.Bytes()))
	}
	w.WriteBits(0x3, 2)
	if b := w.Bytes(); len(b) != 1 || b[0] != 0b11000000 {
		t.Fatalf("after Reset+write: %08b", b)
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 0)
	if w.BitLen() != 0 {
		t.Fatalf("BitLen = %d, want 0", w.BitLen())
	}
}

func TestWriteBit(t *testing.T) {
	var w Writer
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBit(7) // any nonzero writes 1
	r := NewReader(w.Bytes(), w.BitLen())
	want := []uint{1, 0, 1}
	for i, wb := range want {
		got, err := r.ReadBit()
		if err != nil || got != wb {
			t.Fatalf("bit %d: got %d err %v, want %d", i, got, err, wb)
		}
	}
}

// Property: any sequence of (value,width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%200) + 1
		type field struct {
			v uint64
			n int
		}
		fields := make([]field, n)
		var w Writer
		for i := range fields {
			width := rng.Intn(64) + 1
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << uint(width)) - 1
			}
			fields[i] = field{v, width}
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes(), w.BitLen())
		for _, f := range fields {
			got, err := r.ReadBits(f.n)
			if err != nil || got != f.v {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bit length equals the sum of written widths, and the byte
// buffer is exactly ceil(bits/8) long.
func TestQuickLengths(t *testing.T) {
	f := func(widths []uint8) bool {
		var w Writer
		total := 0
		for _, wd := range widths {
			n := int(wd % 65)
			w.WriteBits(0xAAAAAAAAAAAAAAAA, n)
			total += n
		}
		return w.BitLen() == total && len(w.Bytes()) == (total+7)/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		w.WriteBits(uint64(i), 10)
		if w.BitLen() > 1<<20 {
			w.Reset()
		}
	}
}
