package ate

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := DefaultTester().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Tester{ClockHz: 0}).Validate(); err == nil {
		t.Fatal("zero clock accepted")
	}
	if err := (Tester{ClockHz: 1e6, VectorMemBits: -1}).Validate(); err == nil {
		t.Fatal("negative memory accepted")
	}
}

func TestFits(t *testing.T) {
	tr := Tester{ClockHz: 1e6, VectorMemBits: 1000}
	if !tr.Fits(1000) || tr.Fits(1001) {
		t.Fatal("Fits boundary wrong")
	}
	if !(Tester{ClockHz: 1e6}).Fits(1 << 40) {
		t.Fatal("unlimited memory should always fit")
	}
}

func TestTiming(t *testing.T) {
	tr := Tester{ClockHz: 1e6}
	if got := tr.CycleTime(); got != time.Microsecond {
		t.Fatalf("CycleTime = %v", got)
	}
	if got := tr.DownloadTime(2_000_000); got != 2*time.Second {
		t.Fatalf("DownloadTime = %v", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 30); got != 0.7 {
		t.Fatalf("Improvement = %v", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Fatalf("Improvement(0,·) = %v", got)
	}
	if got := Improvement(100, 120); got > -0.199 || got < -0.201 {
		t.Fatalf("expansion Improvement = %v", got)
	}
}
