// Package ate models the automated test equipment side of the paper's
// Figure 2: a tester with a clock, a vector memory, and one serial
// channel feeding the device under test. Test economics (Section 1) are
// driven by two quantities this package computes: the vector-memory
// volume a test set occupies and the wall-clock download time at the
// tester clock rate.
package ate

import (
	"fmt"
	"time"
)

// Tester describes one ATE channel.
type Tester struct {
	// ClockHz is the tester cycle rate; one bit crosses the channel per
	// cycle.
	ClockHz float64
	// VectorMemBits is the per-channel vector memory capacity (0 =
	// unlimited).
	VectorMemBits int
}

// DefaultTester returns a 20 MHz channel, the class of low-cost tester
// the paper's economics argument targets.
func DefaultTester() Tester {
	return Tester{ClockHz: 20e6}
}

// Validate reports whether the tester description is usable.
func (t Tester) Validate() error {
	if t.ClockHz <= 0 {
		return fmt.Errorf("ate: non-positive clock %v", t.ClockHz)
	}
	if t.VectorMemBits < 0 {
		return fmt.Errorf("ate: negative vector memory %d", t.VectorMemBits)
	}
	return nil
}

// Fits reports whether a test set of the given volume fits the vector
// memory.
func (t Tester) Fits(bits int) bool {
	return t.VectorMemBits == 0 || bits <= t.VectorMemBits
}

// CycleTime returns the duration of one tester cycle.
func (t Tester) CycleTime() time.Duration {
	return time.Duration(float64(time.Second) / t.ClockHz)
}

// DownloadTime returns the wall-clock time to deliver the given number
// of tester cycles (for raw scan-in, cycles == bits).
func (t Tester) DownloadTime(cycles int) time.Duration {
	return time.Duration(float64(cycles) * float64(time.Second) / t.ClockHz)
}

// Improvement returns the paper's download-performance metric:
// 1 - compressedCycles/rawCycles. With an infinitely fast internal clock
// it converges to the compression ratio (Section 6, Table 2).
func Improvement(rawCycles, compressedCycles int) float64 {
	if rawCycles == 0 {
		return 0
	}
	return 1 - float64(compressedCycles)/float64(rawCycles)
}
