package jobs

import (
	"sync"
	"time"
)

// Quota is the per-tenant admission policy. The zero value admits
// everything; each field gates independently.
type Quota struct {
	// RatePerSec refills each tenant's token bucket at this rate;
	// <= 0 disables rate limiting.
	RatePerSec float64
	// Burst is the bucket capacity (how many submissions a tenant may
	// make back to back); <= 0 with RatePerSec set means 1.
	Burst int
	// MaxActive bounds one tenant's jobs that are queued or running at
	// once; <= 0 disables the bound.
	MaxActive int
}

// tenantTable tracks per-tenant token buckets and active-job counts.
// One lock guards the whole table: admission is a handful of float
// operations, never worth sharding.
type tenantTable struct {
	mu    sync.Mutex
	q     Quota
	clock func() time.Time
	byKey map[string]*tenantState
}

// tenantState is one tenant's bucket: tokens as of last, plus the
// tenant's live job count.
type tenantState struct {
	tokens float64
	last   time.Time
	active int
}

func newTenantTable(q Quota, clock func() time.Time) *tenantTable {
	if q.RatePerSec > 0 && q.Burst <= 0 {
		q.Burst = 1
	}
	return &tenantTable{q: q, clock: clock, byKey: make(map[string]*tenantState)}
}

// admit charges one submission to tenant. ok=false carries the reject
// reason and, for rate limiting, how long until the next token.
func (t *tenantTable) admit(tenant string, now time.Time) (reason string, wait time.Duration, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.byKey[tenant]
	if s == nil {
		s = &tenantState{tokens: float64(t.q.Burst), last: now}
		t.byKey[tenant] = s
	}
	if t.q.MaxActive > 0 && s.active >= t.q.MaxActive {
		return ReasonActiveLimit, 0, false
	}
	if t.q.RatePerSec > 0 {
		elapsed := now.Sub(s.last).Seconds()
		if elapsed > 0 {
			s.tokens += elapsed * t.q.RatePerSec
			if s.tokens > float64(t.q.Burst) {
				s.tokens = float64(t.q.Burst)
			}
			s.last = now
		}
		if s.tokens < 1 {
			need := (1 - s.tokens) / t.q.RatePerSec
			return ReasonRateLimited, time.Duration(need * float64(time.Second)), false
		}
		s.tokens--
	}
	s.active++
	return "", 0, true
}

// release returns one active-job slot to tenant (the job reached a
// terminal state).
func (t *tenantTable) release(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.byKey[tenant]; s != nil && s.active > 0 {
		s.active--
	}
}
