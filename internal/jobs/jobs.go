// Package jobs is the asynchronous job tier behind lzwtcd's
// /v1/jobs endpoints: a manager that runs compression work on the
// internal/parallel pool without holding an HTTP connection open for
// the duration.
//
// The manager owns the whole job lifecycle:
//
//   - Submit allocates an ID, charges the tenant's quota, and places
//     the job on a bounded admission queue — a full queue is a typed
//     RejectError carrying the Retry-After estimate, never an
//     unbounded buffer;
//   - a fixed set of runner goroutines drains the queue, moving each
//     job Queued → Running → one of Done / Failed / Canceled (the
//     state machine is monotone: a terminal state never changes);
//   - progress (frames done / frames total) is fed by the telemetry
//     layer: the job's Progress doubles as a telemetry.Sink counting
//     the pool's batch.job span completions, so the same events that
//     drive tracing drive the status endpoint;
//   - Cancel propagates as context cancellation into the job's
//     context, which the run function threads into parallel.Map, so
//     pool workers stop dispatching promptly;
//   - terminal jobs are retained for ResultTTL and then deleted by a
//     background sweeper; a recently swept ID answers lookups with
//     ErrExpired (a bounded tombstone ring), anything older with
//     ErrNotFound.
//
// Backpressure: RetryAfter estimates how long a rejected caller should
// wait, from the admission queue depth, the pool's own queue-depth
// gauge, and an exponentially weighted average of recent job
// durations. The server turns that estimate into a 429 Retry-After
// header.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lzwtc/internal/parallel"
	"lzwtc/internal/telemetry"
)

// State is one job's position in the lifecycle.
type State uint8

// Job states. Transitions are monotone: Queued may move to Running or
// Canceled; Running may move to Done, Failed or Canceled; Done, Failed
// and Canceled are terminal.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
)

// String names the state as it appears in status documents.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Payload is what a finished job hands back: the encoded result plus
// the summary numbers the status document exposes without forcing a
// result fetch.
type Payload struct {
	// Data is the job's result (a wire container for compress jobs).
	Data []byte
	// Patterns is the number of patterns the job processed.
	Patterns int
	// Ratio is the compression ratio achieved, 0 when not applicable.
	Ratio float64
}

// RunFunc is one job's body. It must honor ctx (cancellation arrives
// through it) and report frame progress through pr. The returned
// payload is retained until the TTL sweep.
type RunFunc func(ctx context.Context, pr *Progress) (*Payload, error)

// Status is a point-in-time snapshot of one job, safe to retain and
// serialize (the Payload it may reference is immutable once set).
type Status struct {
	ID     string
	Tenant string
	State  State
	// FramesDone / FramesTotal are the progress feed: pool sub-jobs
	// completed vs expected (1/1 for unsharded compressions).
	FramesDone  int
	FramesTotal int
	// Patterns and Ratio are populated once the job is Done.
	Patterns int
	Ratio    float64
	// Error is the terminal failure message, "" otherwise.
	Error string
	// ResultBytes is len(result) once Done.
	ResultBytes int
	Created     time.Time
	Started     time.Time // zero until Running
	Finished    time.Time // zero until terminal
	// Expires is when the TTL sweep may delete the job; zero until
	// terminal.
	Expires time.Time
}

// Typed lookup/admission errors.
var (
	// ErrNotFound is an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrExpired is a job deleted by the TTL sweep (still remembered in
	// the bounded tombstone ring).
	ErrExpired = errors.New("jobs: job expired")
	// ErrNotDone is a result fetch against a job that has not finished.
	ErrNotDone = errors.New("jobs: job not finished")
	// ErrDraining is a submission against a draining or closed manager.
	ErrDraining = errors.New("jobs: manager is draining")
)

// Reject reasons carried by RejectError.
const (
	ReasonQueueFull   = "queue_full"
	ReasonRateLimited = "rate_limited"
	ReasonActiveLimit = "active_limit"
)

// RejectError is a refused submission: the admission queue is full or
// the tenant is over quota. RetryAfter is the manager's estimate of
// when a retry could succeed.
type RejectError struct {
	Reason     string
	Tenant     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("jobs: submission rejected (%s, tenant %q, retry after %s)",
		e.Reason, e.Tenant, e.RetryAfter)
}

// Config tunes a Manager. The zero value is usable.
type Config struct {
	// QueueDepth bounds jobs admitted but not yet running; <= 0 means
	// 256.
	QueueDepth int
	// Concurrent bounds jobs running at once; <= 0 means 2. Each job
	// may itself fan out over the parallel pool, so this stays small.
	Concurrent int
	// ResultTTL is how long a terminal job (and its result) is
	// retained; <= 0 means 5 minutes.
	ResultTTL time.Duration
	// SweepInterval is how often the background sweeper looks for
	// expired jobs; <= 0 means ResultTTL / 4, floored at one second.
	SweepInterval time.Duration
	// Quota is the per-tenant admission policy; the zero value admits
	// everything.
	Quota Quota
	// Recorder receives manager telemetry (job spans, counters,
	// gauges). nil runs uninstrumented.
	Recorder *telemetry.Recorder
	// now is the clock, injectable for tests; nil means time.Now.
	now func() time.Time
}

// Manager owns the asynchronous job tier. Create with NewManager and
// release with Close.
type Manager struct {
	cfg   Config
	rec   *telemetry.Recorder
	clock func() time.Time

	mu       sync.Mutex
	jobs     map[string]*job
	tomb     map[string]struct{} // recently swept IDs
	tombRing []string            // eviction order for tomb
	queued   int                 // jobs admitted, not yet picked up
	running  int

	tenants *tenantTable

	queue    chan *job
	draining atomic.Bool
	baseCtx  context.Context
	baseStop context.CancelFunc
	wg       sync.WaitGroup // runners + sweeper
	jobsWG   sync.WaitGroup // one unit per non-terminal job

	// ewmaDurBits holds math.Float64bits of the exponentially weighted
	// average job duration in seconds, the Retry-After estimator's
	// main input.
	ewmaDurBits atomic.Uint64

	m managerMetrics
}

// tombstoneCap bounds how many swept job IDs stay distinguishable from
// never-existed IDs.
const tombstoneCap = 1024

// NewManager builds and starts a Manager: runner goroutines and the
// TTL sweeper are live when it returns.
func NewManager(cfg Config) *Manager {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Concurrent <= 0 {
		cfg.Concurrent = 2
	}
	if cfg.ResultTTL <= 0 {
		cfg.ResultTTL = 5 * time.Minute
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.ResultTTL / 4
		if cfg.SweepInterval < time.Second {
			cfg.SweepInterval = time.Second
		}
	}
	clock := cfg.now
	if clock == nil {
		clock = time.Now
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		rec:      cfg.Recorder,
		clock:    clock,
		jobs:     make(map[string]*job),
		tomb:     make(map[string]struct{}),
		tenants:  newTenantTable(cfg.Quota, clock),
		queue:    make(chan *job, cfg.QueueDepth),
		baseCtx:  ctx,
		baseStop: stop,
	}
	m.m.init(cfg.Recorder)
	for i := 0; i < cfg.Concurrent; i++ {
		m.wg.Add(1)
		go m.runner(ctx)
	}
	m.wg.Add(1)
	go m.sweeper(ctx)
	return m
}

// job is the manager's internal record. All mutable fields are guarded
// by Manager.mu except progress (atomics) and the fields set once
// before publication.
type job struct {
	id      string
	tenant  string
	run     RunFunc
	cancel  context.CancelFunc
	ctx     context.Context
	created time.Time

	state    State
	started  time.Time
	finished time.Time
	expires  time.Time
	payload  *Payload
	err      error

	progress Progress
}

// snapshotLocked copies the job into a Status. Caller holds mu.
func (j *job) snapshotLocked() Status {
	done, total := j.progress.Snapshot()
	st := Status{
		ID: j.id, Tenant: j.tenant, State: j.state,
		FramesDone: done, FramesTotal: total,
		Created: j.created, Started: j.started, Finished: j.finished,
		Expires: j.expires,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.payload != nil {
		st.Patterns = j.payload.Patterns
		st.Ratio = j.payload.Ratio
		st.ResultBytes = len(j.payload.Data)
	}
	return st
}

// Submit admits one job for tenant, charging its quota. ctx supplies
// the trace span and request ID the job's spans join under — its
// cancellation does NOT propagate (the submitting HTTP request ends
// long before the job runs). The returned Status is the job's initial
// queued snapshot.
func (m *Manager) Submit(ctx context.Context, tenant string, run RunFunc) (Status, error) {
	if m.draining.Load() {
		return Status{}, ErrDraining
	}
	now := m.clock()
	if reason, wait, ok := m.tenants.admit(tenant, now); !ok {
		m.m.rejected.Inc()
		if reason == ReasonActiveLimit && wait <= 0 {
			wait = m.RetryAfter()
		}
		return Status{}, &RejectError{Reason: reason, Tenant: tenant, RetryAfter: clampRetry(wait)}
	}
	jctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	j := &job{
		id:      newJobID(),
		tenant:  tenant,
		run:     run,
		cancel:  cancel,
		ctx:     jctx,
		created: now,
		state:   StateQueued,
	}

	m.mu.Lock()
	m.jobs[j.id] = j
	m.queued++
	m.m.queueDepth.Set(float64(m.queued))
	m.mu.Unlock()
	m.jobsWG.Add(1)

	// The admission queue has exactly QueueDepth slots; a full channel
	// is the backpressure signal, converted to a typed rejection, and
	// the bookkeeping above is rolled back.
	select {
	case m.queue <- j:
	default:
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.queued--
		m.m.queueDepth.Set(float64(m.queued))
		m.mu.Unlock()
		m.jobsWG.Done()
		m.tenants.release(tenant)
		cancel()
		m.m.rejected.Inc()
		return Status{}, &RejectError{Reason: ReasonQueueFull, Tenant: tenant, RetryAfter: m.RetryAfter()}
	}
	m.m.submitted.Inc()

	m.mu.Lock()
	st := j.snapshotLocked()
	m.mu.Unlock()
	return st, nil
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		if _, expired := m.tomb[id]; expired {
			return Status{}, ErrExpired
		}
		return Status{}, ErrNotFound
	}
	return j.snapshotLocked(), nil
}

// Result returns a finished job's payload. ErrNotDone covers every
// non-terminal state; a Failed or Canceled job returns its terminal
// Status and the error that ended it.
func (m *Manager) Result(id string) (*Payload, Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		if _, expired := m.tomb[id]; expired {
			return nil, Status{}, ErrExpired
		}
		return nil, Status{}, ErrNotFound
	}
	st := j.snapshotLocked()
	switch j.state {
	case StateDone:
		return j.payload, st, nil
	case StateFailed:
		return nil, st, j.err
	case StateCanceled:
		return nil, st, context.Canceled
	default:
		return nil, st, ErrNotDone
	}
}

// Cancel requests cancellation of one job. Queued jobs transition to
// Canceled immediately; Running jobs get their context canceled and
// transition when the run function returns. Canceling a terminal job
// is a no-op returning its current status.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		if _, expired := m.tomb[id]; expired {
			m.mu.Unlock()
			return Status{}, ErrExpired
		}
		m.mu.Unlock()
		return Status{}, ErrNotFound
	}
	var cancel context.CancelFunc
	switch j.state {
	case StateQueued:
		// The runner will see the terminal state when it dequeues the
		// job and skip it.
		m.finishLocked(j, StateCanceled, nil, context.Canceled)
		cancel = j.cancel
	case StateRunning:
		cancel = j.cancel
	default:
		// Terminal already; idempotent.
	}
	st := j.snapshotLocked()
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return st, nil
}

// List returns a snapshot of every retained job, newest first. It
// exists for introspection (stats documents, debugging); the slice is
// bounded by the admission queue plus the TTL window.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshotLocked())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Created.After(out[b].Created) })
	return out
}

// Counts returns the current queued and running job counts.
func (m *Manager) Counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued, m.running
}

// RetryAfter estimates how long a rejected caller should wait before
// retrying: the work ahead of it (admission queue plus the pool's own
// queue-depth gauge) times the average job duration, divided across
// the runner slots. Clamped to [1s, 60s] so the header is always
// actionable.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	depth := float64(m.queued + m.running)
	m.mu.Unlock()
	if reg := m.rec.Registry(); reg != nil {
		depth += reg.Snapshot().GaugeValue(parallel.MetricQueueDepth)
	}
	avg := math.Float64frombits(m.ewmaDurBits.Load())
	if avg <= 0 {
		avg = 0.1 // no history yet: assume fast jobs
	}
	est := time.Duration(depth * avg / float64(m.cfg.Concurrent) * float64(time.Second))
	return clampRetry(est)
}

// clampRetry bounds a Retry-After estimate to [1s, 60s].
func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > 60*time.Second {
		return 60 * time.Second
	}
	return d
}

// observeDuration folds one finished job's wall clock into the EWMA
// (alpha 0.3: a few jobs dominate, history decays fast enough to track
// workload shifts).
func (m *Manager) observeDuration(d time.Duration) {
	const alpha = 0.3
	secs := d.Seconds()
	for {
		old := m.ewmaDurBits.Load()
		prev := math.Float64frombits(old)
		next := secs
		if prev > 0 {
			next = alpha*secs + (1-alpha)*prev
		}
		if m.ewmaDurBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// runner drains the admission queue until ctx is canceled.
func (m *Manager) runner(ctx context.Context) {
	defer m.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-m.queue:
			m.runOne(j)
		}
	}
}

// runOne executes one dequeued job through its state transitions.
func (m *Manager) runOne(j *job) {
	m.mu.Lock()
	m.queued--
	m.m.queueDepth.Set(float64(m.queued))
	if j.state != StateQueued {
		// Canceled while queued: bookkeeping only (finishLocked already
		// ran under Cancel).
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = m.clock()
	m.running++
	m.m.running.Set(float64(m.running))
	m.mu.Unlock()

	rctx, sp := m.rec.StartSpan(j.ctx, SpanJobRun)
	payload, err := runContained(rctx, j, &j.progress)
	// A run that returned because the job was canceled reports the
	// cancellation, whatever error the pool surfaced it as.
	if err != nil && j.ctx.Err() != nil {
		err = context.Canceled
	}

	m.mu.Lock()
	m.running--
	m.m.running.Set(float64(m.running))
	switch {
	case err == nil:
		m.finishLocked(j, StateDone, payload, nil)
	case errors.Is(err, context.Canceled):
		m.finishLocked(j, StateCanceled, nil, context.Canceled)
	default:
		m.finishLocked(j, StateFailed, nil, err)
	}
	st := j.snapshotLocked()
	m.mu.Unlock()
	m.observeDuration(st.Finished.Sub(st.Created))
	m.m.duration.Observe(st.Finished.Sub(st.Created).Seconds())
	sp.End(telemetry.F("job_id", j.id), telemetry.F("state", st.State.String()),
		telemetry.F("frames", st.FramesDone))
}

// runContained invokes the job body with panic containment: a panic
// becomes the job's failure, never a dead runner goroutine.
func runContained(ctx context.Context, j *job, pr *Progress) (p *Payload, err error) {
	defer func() {
		if v := recover(); v != nil {
			p, err = nil, fmt.Errorf("jobs: job %s panicked: %v", j.id, v)
		}
	}()
	return j.run(ctx, pr)
}

// finishLocked moves a job into a terminal state exactly once. Caller
// holds mu. Monotonicity is enforced here: a job already terminal is
// left untouched.
func (m *Manager) finishLocked(j *job, s State, payload *Payload, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.finished = m.clock()
	j.expires = j.finished.Add(m.cfg.ResultTTL)
	j.payload = payload
	j.err = err
	m.tenants.release(j.tenant)
	m.jobsWG.Done()
	switch s {
	case StateDone:
		m.m.completed.Inc()
	case StateFailed:
		m.m.failed.Inc()
	case StateCanceled:
		m.m.canceled.Inc()
	}
	m.m.retained.Set(float64(len(m.jobs)))
}

// sweeper deletes expired terminal jobs on a fixed cadence.
func (m *Manager) sweeper(ctx context.Context) {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Sweep deletes every terminal job whose TTL has passed, remembering
// the IDs in the tombstone ring, and returns how many it removed. The
// background sweeper calls this on its interval; tests call it
// directly.
func (m *Manager) Sweep() int {
	now := m.clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, j := range m.jobs {
		if j.state.Terminal() && !j.expires.After(now) {
			delete(m.jobs, id)
			m.tombstoneLocked(id)
			n++
		}
	}
	if n > 0 {
		m.m.expired.Add(int64(n))
		m.m.retained.Set(float64(len(m.jobs)))
	}
	return n
}

// tombstoneLocked remembers a swept ID, evicting the oldest entry past
// the cap. Caller holds mu.
func (m *Manager) tombstoneLocked(id string) {
	if len(m.tombRing) >= tombstoneCap {
		oldest := m.tombRing[0]
		m.tombRing = m.tombRing[1:]
		delete(m.tomb, oldest)
	}
	m.tomb[id] = struct{}{}
	m.tombRing = append(m.tombRing, id)
}

// Drain stops admitting jobs and waits until every admitted job has
// reached a terminal state, or ctx expires. Running jobs are allowed
// to finish — drain is graceful, not a cancellation.
func (m *Manager) Drain(ctx context.Context) error {
	m.draining.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.jobsWG.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain: %w", ctx.Err())
	}
}

// Close cancels every remaining job and stops the runner and sweeper
// goroutines. It is idempotent and safe after Drain.
func (m *Manager) Close() {
	m.draining.Store(true)
	m.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(m.jobs))
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			// Queued jobs the runners will never reach transition here;
			// running jobs transition in runOne once their body returns.
			if j.state == StateQueued {
				m.finishLocked(j, StateCanceled, nil, context.Canceled)
			}
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	m.jobsWG.Wait()
	m.baseStop()
	m.wg.Wait()
}

// newJobID allocates a 16-hex-digit job identifier (the request-ID
// generator: random, collision-improbable, grammar-safe for URLs and
// headers).
func newJobID() string { return telemetry.NewRequestID() }
