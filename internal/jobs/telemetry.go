package jobs

import (
	"sync/atomic"

	"lzwtc/internal/parallel"
	"lzwtc/internal/telemetry"
)

// Registry metric names for the job tier. Queue depth / running /
// retained are gauges tracking the manager's live population; the
// counters aggregate lifecycle outcomes; the duration histogram feeds
// the Retry-After estimator's sanity checks and capacity planning.
const (
	MetricJobsSubmitted  = "lzwtc_jobs_submitted_total"
	MetricJobsCompleted  = "lzwtc_jobs_completed_total"
	MetricJobsFailed     = "lzwtc_jobs_failed_total"
	MetricJobsCanceled   = "lzwtc_jobs_canceled_total"
	MetricJobsExpired    = "lzwtc_jobs_expired_total"
	MetricJobsRejected   = "lzwtc_jobs_rejected_total"
	MetricJobsQueueDepth = "lzwtc_jobs_queue_depth"
	MetricJobsRunning    = "lzwtc_jobs_running"
	MetricJobsRetained   = "lzwtc_jobs_retained"
	MetricJobDuration    = "lzwtc_jobs_duration_seconds"
)

// SpanJobRun is the trace span covering one job's execution, a child
// of the submitting request's span (the job context carries the
// submit-time span identity), so async work joins the same trace as
// the 202 that admitted it.
const SpanJobRun = "job.run"

// managerMetrics holds the manager's instruments, resolved once at
// construction. All fields are nil-safe: a nil recorder costs a
// pointer check per touch.
type managerMetrics struct {
	submitted  *telemetry.Counter
	completed  *telemetry.Counter
	failed     *telemetry.Counter
	canceled   *telemetry.Counter
	expired    *telemetry.Counter
	rejected   *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
	retained   *telemetry.Gauge
	duration   *telemetry.Histogram
}

func (m *managerMetrics) init(rec *telemetry.Recorder) {
	reg := rec.Registry()
	if reg == nil {
		return
	}
	m.submitted = reg.Counter(MetricJobsSubmitted, "jobs admitted to the queue")
	m.completed = reg.Counter(MetricJobsCompleted, "jobs finished successfully")
	m.failed = reg.Counter(MetricJobsFailed, "jobs finished with an error")
	m.canceled = reg.Counter(MetricJobsCanceled, "jobs canceled before completion")
	m.expired = reg.Counter(MetricJobsExpired, "terminal jobs deleted by the TTL sweep")
	m.rejected = reg.Counter(MetricJobsRejected, "submissions refused by quota or a full queue")
	m.queueDepth = reg.Gauge(MetricJobsQueueDepth, "jobs admitted but not yet running")
	m.running = reg.Gauge(MetricJobsRunning, "jobs currently executing")
	m.retained = reg.Gauge(MetricJobsRetained, "jobs retained (any state) awaiting fetch or sweep")
	m.duration = reg.Histogram(MetricJobDuration, "job wall clock from submit to terminal state", telemetry.DurationBuckets())
}

// Progress is one job's frame counter, fed by the telemetry layer: it
// implements telemetry.Sink and counts the parallel pool's batch.job
// span completions, so wiring it as a sink on the job's recorder makes
// every pool sub-job (one per shard frame) tick the status endpoint's
// frames_done. It opts out of per-step events, so attaching it never
// re-enables the compressor's step-tracing hot path.
type Progress struct {
	done  atomic.Int64
	total atomic.Int64
}

// SetTotal declares how many frames the job expects (1 for unsharded
// compressions, the shard count otherwise).
func (p *Progress) SetTotal(n int) {
	if p != nil {
		p.total.Store(int64(n))
	}
}

// Add advances the done counter directly, for run bodies that do not
// route progress through the telemetry sink.
func (p *Progress) Add(n int) {
	if p != nil {
		p.done.Add(int64(n))
	}
}

// Snapshot returns the current (done, total) pair.
func (p *Progress) Snapshot() (done, total int) {
	if p == nil {
		return 0, 0
	}
	return int(p.done.Load()), int(p.total.Load())
}

// WantsSteps opts out of per-step compressor events (telemetry.StepSink).
func (p *Progress) WantsSteps() bool { return false }

// Emit implements telemetry.Sink: each completed pool job span
// advances the frame counter.
func (p *Progress) Emit(ev telemetry.Event) {
	rec, ok := telemetry.SpanRecordFromEvent(ev)
	if !ok || rec.Name != parallel.EventJob {
		return
	}
	p.done.Add(1)
}
