package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lzwtc/internal/parallel"
	"lzwtc/internal/telemetry"
)

// fakeClock is an injectable manager clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// newTestManager builds a manager over a fresh registry, closing it
// with the test.
func newTestManager(t *testing.T, cfg Config) (*Manager, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Recorder = telemetry.New(reg)
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	return m, reg
}

// waitTerminal polls until the job leaves the live states.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func quickJob(payload *Payload, err error) RunFunc {
	return func(ctx context.Context, pr *Progress) (*Payload, error) {
		pr.SetTotal(1)
		pr.Add(1)
		return payload, err
	}
}

// blockingJob returns a run function parked until release is closed
// (or the job context is canceled), plus a channel closed once the
// body is running.
func blockingJob(release <-chan struct{}) (RunFunc, <-chan struct{}) {
	started := make(chan struct{})
	return func(ctx context.Context, pr *Progress) (*Payload, error) {
		close(started)
		select {
		case <-release:
			return &Payload{Data: []byte("late")}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, started
}

func TestJobLifecycleDone(t *testing.T) {
	m, reg := newTestManager(t, Config{Concurrent: 1})
	st, err := m.Submit(context.Background(), "t1", quickJob(&Payload{Data: []byte("abc"), Patterns: 7, Ratio: 2.5}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.ID == "" || st.Tenant != "t1" {
		t.Fatalf("bad initial snapshot: %+v", st)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateDone {
		t.Fatalf("want done, got %s (%s)", fin.State, fin.Error)
	}
	if fin.Patterns != 7 || fin.Ratio != 2.5 || fin.ResultBytes != 3 {
		t.Fatalf("payload summary not reflected: %+v", fin)
	}
	if fin.FramesDone != 1 || fin.FramesTotal != 1 {
		t.Fatalf("progress not fed: %d/%d", fin.FramesDone, fin.FramesTotal)
	}
	if fin.Started.IsZero() || fin.Finished.IsZero() || fin.Expires.IsZero() {
		t.Fatalf("lifecycle timestamps missing: %+v", fin)
	}
	payload, _, err := m.Result(st.ID)
	if err != nil || string(payload.Data) != "abc" {
		t.Fatalf("result fetch: %v / %v", payload, err)
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricJobsSubmitted); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricJobsSubmitted, got)
	}
	if got := snap.CounterValue(MetricJobsCompleted); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricJobsCompleted, got)
	}
	for _, name := range []string{MetricJobsFailed, MetricJobsCanceled, MetricJobsExpired, MetricJobsRejected} {
		if got := snap.CounterValue(name); got != 0 {
			t.Fatalf("%s = %d, want 0", name, got)
		}
	}
	if got := snap.GaugeValue(MetricJobsQueueDepth); got != 0 {
		t.Fatalf("%s = %v, want 0", MetricJobsQueueDepth, got)
	}
	if got := snap.GaugeValue(MetricJobsRunning); got != 0 {
		t.Fatalf("%s = %v, want 0", MetricJobsRunning, got)
	}
	if got := snap.GaugeValue(MetricJobsRetained); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricJobsRetained, got)
	}
	for _, h := range snap.Histograms {
		if h.Name == MetricJobDuration && h.Count == 1 {
			return
		}
	}
	t.Fatalf("%s histogram did not observe the job", MetricJobDuration)
}

func TestJobFailureAndPanicContainment(t *testing.T) {
	m, _ := newTestManager(t, Config{Concurrent: 1})
	boom := errors.New("boom")
	st, err := m.Submit(context.Background(), "t", quickJob(nil, boom))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateFailed || fin.Error != "boom" {
		t.Fatalf("want failed/boom, got %s/%q", fin.State, fin.Error)
	}
	if _, _, err := m.Result(st.ID); !errors.Is(err, boom) {
		t.Fatalf("Result of failed job: %v", err)
	}

	st2, err := m.Submit(context.Background(), "t", func(ctx context.Context, pr *Progress) (*Payload, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitTerminal(t, m, st2.ID)
	if fin2.State != StateFailed {
		t.Fatalf("panicking job state %s", fin2.State)
	}
	// The runner survived the panic: a third job still executes.
	st3, err := m.Submit(context.Background(), "t", quickJob(&Payload{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if fin3 := waitTerminal(t, m, st3.ID); fin3.State != StateDone {
		t.Fatalf("runner did not survive panic: %s", fin3.State)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	m, reg := newTestManager(t, Config{Concurrent: 1})
	release := make(chan struct{})
	blocker, started := blockingJob(release)
	if _, err := m.Submit(context.Background(), "t", blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	victim, err := m.Submit(context.Background(), "t", quickJob(&Payload{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued cancel: want canceled now, got %s", st.State)
	}
	if _, _, err := m.Result(victim.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result of canceled job: %v", err)
	}
	close(release)
	// The runner dequeues the tombstoned entry and must not resurrect it.
	time.Sleep(10 * time.Millisecond)
	if st, _ := m.Get(victim.ID); st.State != StateCanceled {
		t.Fatalf("canceled job resurrected to %s", st.State)
	}
	if got := reg.Snapshot().CounterValue(MetricJobsCanceled); got != 1 {
		t.Fatalf("canceled counter = %d", got)
	}
}

func TestCancelWhileRunning(t *testing.T) {
	m, _ := newTestManager(t, Config{Concurrent: 1})
	release := make(chan struct{})
	defer close(release)
	blocker, started := blockingJob(release)
	st, err := m.Submit(context.Background(), "t", blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	mid, err := m.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State != StateRunning {
		t.Fatalf("cancel of running job should report running until the body returns, got %s", mid.State)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateCanceled {
		t.Fatalf("want canceled, got %s (%s)", fin.State, fin.Error)
	}
	// Idempotent: canceling a terminal job is a no-op.
	again, err := m.Cancel(st.ID)
	if err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: %v %s", err, again.State)
	}
}

func TestResultNotDone(t *testing.T) {
	m, _ := newTestManager(t, Config{Concurrent: 1})
	release := make(chan struct{})
	defer close(release)
	blocker, started := blockingJob(release)
	st, err := m.Submit(context.Background(), "t", blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, _, err := m.Result(st.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("want ErrNotDone, got %v", err)
	}
}

func TestTTLSweepAndTombstones(t *testing.T) {
	clock := newFakeClock()
	m, reg := newTestManager(t, Config{Concurrent: 1, ResultTTL: time.Minute, SweepInterval: time.Hour, now: clock.Now})
	st, err := m.Submit(context.Background(), "t", quickJob(&Payload{Data: []byte("x")}, nil))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)

	// Inside the TTL nothing is swept.
	clock.Advance(30 * time.Second)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("premature sweep removed %d", n)
	}
	clock.Advance(31 * time.Second)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	if _, err := m.Get(st.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("swept job Get: %v", err)
	}
	if _, _, err := m.Result(st.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("swept job Result: %v", err)
	}
	if _, err := m.Cancel(st.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("swept job Cancel: %v", err)
	}
	if _, err := m.Get("00000000deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: %v", err)
	}
	if got := reg.Snapshot().CounterValue(MetricJobsExpired); got != 1 {
		t.Fatalf("expired counter = %d", got)
	}
}

func TestTombstoneRingBounded(t *testing.T) {
	m := &Manager{jobs: map[string]*job{}, tomb: map[string]struct{}{}}
	for i := 0; i < tombstoneCap+10; i++ {
		m.tombstoneLocked(fmt.Sprintf("job-%d", i))
	}
	if len(m.tomb) != tombstoneCap || len(m.tombRing) != tombstoneCap {
		t.Fatalf("tombstones unbounded: %d/%d", len(m.tomb), len(m.tombRing))
	}
	if _, ok := m.tomb["job-0"]; ok {
		t.Fatal("oldest tombstone not evicted")
	}
	if _, ok := m.tomb[fmt.Sprintf("job-%d", tombstoneCap+9)]; !ok {
		t.Fatal("newest tombstone missing")
	}
}

func TestQueueFullRejection(t *testing.T) {
	m, reg := newTestManager(t, Config{Concurrent: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	blocker, started := blockingJob(release)
	if _, err := m.Submit(context.Background(), "t", blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit(context.Background(), "t", quickJob(&Payload{}, nil)); err != nil {
		t.Fatalf("queue slot should admit: %v", err)
	}
	_, err := m.Submit(context.Background(), "t", quickJob(&Payload{}, nil))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonQueueFull {
		t.Fatalf("want queue_full rejection, got %v", err)
	}
	if rej.RetryAfter < time.Second || rej.RetryAfter > time.Minute {
		t.Fatalf("Retry-After %s outside [1s, 60s]", rej.RetryAfter)
	}
	if got := reg.Snapshot().CounterValue(MetricJobsRejected); got != 1 {
		t.Fatalf("rejected counter = %d", got)
	}
}

func TestQuotaRateLimit(t *testing.T) {
	m, _ := newTestManager(t, Config{Concurrent: 2, Quota: Quota{RatePerSec: 0.5, Burst: 1}})
	if _, err := m.Submit(context.Background(), "slow", quickJob(&Payload{}, nil)); err != nil {
		t.Fatalf("burst submission rejected: %v", err)
	}
	_, err := m.Submit(context.Background(), "slow", quickJob(&Payload{}, nil))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonRateLimited {
		t.Fatalf("want rate_limited, got %v", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("rate_limited without a Retry-After estimate")
	}
	// Quotas are per tenant: another key is unaffected.
	if _, err := m.Submit(context.Background(), "other", quickJob(&Payload{}, nil)); err != nil {
		t.Fatalf("tenant isolation broken: %v", err)
	}
}

func TestQuotaActiveLimit(t *testing.T) {
	m, _ := newTestManager(t, Config{Concurrent: 1, Quota: Quota{MaxActive: 1}})
	release := make(chan struct{})
	blocker, started := blockingJob(release)
	st, err := m.Submit(context.Background(), "t", blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, err = m.Submit(context.Background(), "t", quickJob(&Payload{}, nil))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonActiveLimit {
		t.Fatalf("want active_limit, got %v", err)
	}
	close(release)
	waitTerminal(t, m, st.ID)
	// The slot frees once the job is terminal.
	if _, err := m.Submit(context.Background(), "t", quickJob(&Payload{}, nil)); err != nil {
		t.Fatalf("active slot not released: %v", err)
	}
}

func TestDrainWaitsAndRefuses(t *testing.T) {
	m, _ := newTestManager(t, Config{Concurrent: 2})
	release := make(chan struct{})
	blocker, started := blockingJob(release)
	st, err := m.Submit(context.Background(), "t", blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func(ctx context.Context) { drained <- m.Drain(ctx) }(context.Background())
	// Drain must not return while the job runs.
	select {
	case err := <-drained:
		t.Fatalf("drain returned with a job in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := m.Submit(context.Background(), "t", quickJob(&Payload{}, nil)); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining manager admitted a job: %v", err)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := m.Get(st.ID); st.State != StateDone {
		t.Fatalf("drained job state %s", st.State)
	}

	// A drain bounded by an already-dead context reports the deadline.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m2, _ := newTestManager(t, Config{Concurrent: 1})
	release2 := make(chan struct{})
	defer close(release2)
	blocker2, started2 := blockingJob(release2)
	if _, err := m2.Submit(context.Background(), "t", blocker2); err != nil {
		t.Fatal(err)
	}
	<-started2
	if err := m2.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("bounded drain: %v", err)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	m, _ := newTestManager(t, Config{Concurrent: 1})
	if got := m.RetryAfter(); got < time.Second || got > 60*time.Second {
		t.Fatalf("RetryAfter %s outside [1s, 60s]", got)
	}
	// A huge EWMA is still clamped to the ceiling.
	m.observeDuration(10 * time.Minute)
	m.mu.Lock()
	m.queued = 500
	m.mu.Unlock()
	if got := m.RetryAfter(); got != 60*time.Second {
		t.Fatalf("RetryAfter %s, want the 60s ceiling", got)
	}
}

func TestProgressSinkCountsPoolJobSpans(t *testing.T) {
	var pr Progress
	if pr.WantsSteps() {
		t.Fatal("Progress must opt out of per-step events")
	}
	pr.SetTotal(3)
	// One pool job span, one unrelated span, one non-span event: only
	// the batch.job completion may tick the counter.
	spanEvent := func(name string) telemetry.Event {
		return telemetry.Event{Kind: telemetry.EventTraceSpan, Fields: []telemetry.Field{
			telemetry.F("trace_id", "0123456789abcdef"), telemetry.F("span_id", "fedcba9876543210"),
			telemetry.F("name", name),
		}}
	}
	pr.Emit(spanEvent(parallel.EventJob))
	pr.Emit(spanEvent(SpanJobRun))
	pr.Emit(telemetry.Event{Kind: "counter", Fields: []telemetry.Field{telemetry.F("name", parallel.EventJob)}})
	done, total := pr.Snapshot()
	if done != 1 || total != 3 {
		t.Fatalf("progress = %d/%d, want 1/3", done, total)
	}
}

// stateRank maps states onto the monotone order the lifecycle promises.
func stateRank(s State) int {
	switch s {
	case StateQueued:
		return 0
	case StateRunning:
		return 1
	default:
		return 2 // terminal
	}
}

// TestConcurrentStress races submit, cancel and sweep across many
// goroutines, then verifies no goroutine leaked and every observed
// status sequence was monotone.
func TestConcurrentStress(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		m, _ := newTestManager(t, Config{Concurrent: 4, QueueDepth: 64, ResultTTL: time.Millisecond})
		const workers = 16
		const perWorker = 25
		var regress atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ctx context.Context, w int) {
				defer wg.Done()
				tenant := fmt.Sprintf("tenant-%d", w%4)
				for i := 0; i < perWorker; i++ {
					st, err := m.Submit(ctx, tenant, quickJob(&Payload{Data: []byte{byte(i)}}, nil))
					if err != nil {
						var rej *RejectError
						if errors.As(err, &rej) {
							continue // backpressure is a valid outcome under stress
						}
						t.Errorf("submit: %v", err)
						return
					}
					if i%3 == 0 {
						m.Cancel(st.ID) //nolint:errcheck // racing cancel may hit any state
					}
					if i%7 == 0 {
						m.Sweep()
					}
					// Observe the lifecycle: the rank must never decrease.
					last := -1
					for polls := 0; polls < 1000; polls++ {
						cur, err := m.Get(st.ID)
						if err != nil {
							break // swept; fine
						}
						r := stateRank(cur.State)
						if r < last {
							regress.Add(1)
							break
						}
						last = r
						if cur.State.Terminal() {
							break
						}
						time.Sleep(100 * time.Microsecond)
					}
				}
			}(context.Background(), w)
		}
		wg.Wait()
		if regress.Load() != 0 {
			t.Fatalf("%d non-monotone state transitions observed", regress.Load())
		}
		m.Close()
	}()

	// Settle loop: all manager goroutines must be gone after Close.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseCancelsOutstanding: Close with queued and running jobs
// cancels them rather than waiting forever.
func TestCloseCancelsOutstanding(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewManager(Config{Concurrent: 1, QueueDepth: 8, Recorder: telemetry.New(reg)})
	release := make(chan struct{})
	defer close(release)
	blocker, started := blockingJob(release)
	run, err := m.Submit(context.Background(), "t", blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(context.Background(), "t", quickJob(&Payload{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if st, _ := m.Get(run.ID); st.State != StateCanceled {
		t.Fatalf("running job after Close: %s", st.State)
	}
	if st, _ := m.Get(queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job after Close: %s", st.State)
	}
	m.Close() // idempotent
}
