package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lzwtc/internal/bitvec"
)

func TestRoundTripConcrete(t *testing.T) {
	stream := bitvec.MustParse("0101010101010101111111110000000001010101")
	cfg := Config{BlockBits: 4, Coded: 4}
	res, err := Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(res, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equal(out) {
		t.Fatalf("round trip: %q vs %q", out, stream)
	}
	if res.Stats.CodedBlocks == 0 {
		t.Fatal("repetitive stream produced no coded blocks")
	}
}

func TestXAssignmentMapsToFrequentPatterns(t *testing.T) {
	// Train a dominant pattern, then feed X-laden blocks: they must be
	// concretized onto it and coded.
	s := "10101010" + "10101010" + "1010XXXX" + "XXXX1010" + "XXXXXXXX"
	stream := bitvec.MustParse(s)
	cfg := Config{BlockBits: 8, Coded: 2}
	res, err := Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AssignedToFreq != 3 {
		t.Fatalf("AssignedToFreq = %d, want 3", res.Stats.AssignedToFreq)
	}
	out, err := Decompress(res, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatalf("care bits violated: %q", out)
	}
	if out.String() != "1010101010101010101010101010101010101010" {
		t.Fatalf("X blocks not mapped onto the frequent pattern: %q", out)
	}
}

func TestConfigValidate(t *testing.T) {
	for i, c := range []Config{
		{BlockBits: 0},
		{BlockBits: 17},
		{BlockBits: 4, Coded: 17},
		{BlockBits: 4, Coded: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyStream(t *testing.T) {
	res, err := Compress(bitvec.New(0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(res, 0)
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty: %v %v", out, err)
	}
}

func TestDecompressTruncation(t *testing.T) {
	stream := bitvec.MustParse("0101010101010101")
	res, err := Compress(stream, Config{BlockBits: 4, Coded: 2})
	if err != nil {
		t.Fatal(err)
	}
	res.BitLen = 3 // corrupt
	if _, err := Decompress(res, stream.Len()); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestCanonicalCodesArePrefixFree(t *testing.T) {
	lens := codeLengths([]int{50, 20, 10, 10, 5, 5})
	codes := canonicalCodes(lens)
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			li, lj := lens[i], lens[j]
			if li > lj {
				continue
			}
			if codes[j]>>(uint(lj-li)) == codes[i] {
				t.Fatalf("code %d (%b/%d) is a prefix of %d (%b/%d)", i, codes[i], li, j, codes[j], lj)
			}
		}
	}
}

func TestKraftInequality(t *testing.T) {
	f := func(ws []uint8) bool {
		if len(ws) < 2 {
			return true
		}
		weights := make([]int, len(ws))
		for i, w := range ws {
			weights[i] = int(w) + 1
		}
		lens := codeLengths(weights)
		sum := 0.0
		for _, l := range lens {
			if l < 1 {
				return false
			}
			sum += 1 / float64(uint64(1)<<uint(l))
		}
		return sum <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary cube streams round-trip with care bits preserved.
func TestQuickRoundTripCompatibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1500)
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.7 {
				continue
			}
			v.Set(i, bitvec.Bit(rng.Intn(2)))
		}
		cfg := Config{BlockBits: 8, Coded: 16}
		res, err := Compress(v, cfg)
		if err != nil {
			return false
		}
		out, err := Decompress(res, n)
		if err != nil {
			return false
		}
		return n == 0 || v.CompatibleWith(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHighXStreamCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40000
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.9 {
			continue
		}
		v.Set(i, bitvec.Bit(rng.Intn(2)))
	}
	res, err := Compress(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Stats.Ratio(); r < 0.3 {
		t.Fatalf("ratio %.3f on 90%% X stream", r)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 15
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.85 {
			continue
		}
		v.Set(i, bitvec.Bit(rng.Intn(2)))
	}
	b.SetBytes(int64(n / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(v, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
