// Package huffman implements the statistical-coding baseline of the
// paper's related work (refs [5] and [15]: Jas, Ghosh-Dastidar & Touba,
// "Scan vector compression/decompression using statistical coding"):
// selective Huffman coding of fixed-size scan blocks.
//
// The stream is cut into b-bit blocks. Don't-care bits are assigned
// greedily so each block maps onto the most frequent already-seen
// compatible pattern — the paper's observation that X assignment must
// favour the compression scheme. The K most frequent patterns receive
// Huffman codewords (prefixed '1'); all other blocks are emitted raw
// (prefixed '0'), which keeps the decoder a small fixed table as the
// original hardware scheme requires.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"

	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/invariant"
)

// Config sets the block geometry and dictionary size.
type Config struct {
	// BlockBits is the scan-block size b (1..16).
	BlockBits int
	// Coded is K, the number of distinct patterns given Huffman codes;
	// the rest are sent raw. 0 selects 16.
	Coded int
}

// DefaultConfig returns the geometry the VTS'99 paper evaluates: 8-bit
// blocks, 16 coded patterns.
func DefaultConfig() Config { return Config{BlockBits: 8, Coded: 16} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockBits < 1 || c.BlockBits > 16 {
		return fmt.Errorf("huffman: BlockBits %d out of range [1,16]", c.BlockBits)
	}
	if c.Coded < 0 || (c.Coded > 1<<uint(c.BlockBits)) {
		return fmt.Errorf("huffman: Coded %d out of range [0,2^%d]", c.Coded, c.BlockBits)
	}
	return nil
}

func (c Config) coded() int {
	if c.Coded == 0 {
		return 16
	}
	return c.Coded
}

// Stats summarizes one compression run.
type Stats struct {
	InputBits      int
	CompressedBits int
	Blocks         int
	CodedBlocks    int // blocks hit by the selective dictionary
	RawBlocks      int
	AssignedToFreq int // X-laden blocks mapped onto frequent patterns
	TableBits      int // decoder table cost (patterns + code lengths)
}

// Ratio returns the compression ratio (1 - compressed/original),
// including the decoder-table transfer cost.
func (s Stats) Ratio() float64 {
	if s.InputBits == 0 {
		return 0
	}
	return 1 - float64(s.CompressedBits)/float64(s.InputBits)
}

// Result is a compressed stream plus everything needed to invert it.
type Result struct {
	Cfg       Config
	Data      []byte
	BitLen    int
	InputBits int
	// Table is the selective dictionary in rank order; codewords are the
	// canonical Huffman codes over Lens.
	Table []uint16
	Lens  []int
	Stats Stats
}

// Compress encodes a three-valued stream.
func Compress(stream *bitvec.Vector, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := cfg.BlockBits
	nBlocks := (stream.Len() + b - 1) / b
	res := &Result{Cfg: cfg, InputBits: stream.Len()}
	res.Stats.InputBits = stream.Len()
	res.Stats.Blocks = nBlocks
	if nBlocks == 0 {
		return res, nil
	}

	// Pass 1: greedy X assignment toward frequent patterns.
	blocks := make([]uint16, nBlocks)
	freq := map[uint16]int{}
	full := uint16(1)<<uint(b) - 1
	for i := 0; i < nBlocks; i++ {
		val, care := stream.Chunk(i*b, b)
		concrete, matched := assign(uint16(val), uint16(care), full, freq)
		if matched {
			res.Stats.AssignedToFreq++
		}
		blocks[i] = concrete
		freq[concrete]++
	}

	// Pass 2: pick the K most frequent patterns and build a Huffman code.
	type pf struct {
		pat uint16
		n   int
	}
	all := make([]pf, 0, len(freq))
	for p, n := range freq {
		all = append(all, pf{p, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].pat < all[j].pat
	})
	k := cfg.coded()
	if k > len(all) {
		k = len(all)
	}
	res.Table = make([]uint16, k)
	weights := make([]int, k)
	rank := map[uint16]int{}
	for i := 0; i < k; i++ {
		res.Table[i] = all[i].pat
		weights[i] = all[i].n
		rank[all[i].pat] = i
	}
	res.Lens = codeLengths(weights)
	codes := canonicalCodes(res.Lens)

	// Pass 3: emit. '1' + Huffman code for table hits, '0' + raw block
	// otherwise.
	var w bitio.Writer
	for _, blk := range blocks {
		if r, ok := rank[blk]; ok {
			w.WriteBit(1)
			// Huffman depths stay far below 64 for any realistic
			// weight distribution; Width asserts it for the ones
			// codeLengths could theoretically produce.
			w.WriteBits(uint64(codes[r]), invariant.Width(res.Lens[r]))
			res.Stats.CodedBlocks++
		} else {
			w.WriteBit(0)
			w.WriteBits(uint64(blk), b)
			res.Stats.RawBlocks++
		}
	}
	res.Data, res.BitLen = w.Bytes(), w.BitLen()
	// Decoder table cost: each entry ships its pattern and code length.
	res.Stats.TableBits = k * (b + 5)
	res.Stats.CompressedBits = res.BitLen + res.Stats.TableBits
	return res, nil
}

// assign finds the most frequent known pattern compatible with the
// three-valued block, or 0-fills when none exists.
func assign(val, care, full uint16, freq map[uint16]int) (uint16, bool) {
	if care == full {
		return val, false
	}
	best, bestN := uint16(0), -1
	for pat, n := range freq {
		if pat&care == val && (n > bestN || (n == bestN && pat < best)) {
			best, bestN = pat, n
		}
	}
	if bestN >= 0 {
		return best, true
	}
	return val, false // X bits already zero in val
}

// Decompress inverts a compressed stream.
func Decompress(res *Result, outBits int) (*bitvec.Vector, error) {
	if err := res.Cfg.Validate(); err != nil {
		return nil, err
	}
	b := res.Cfg.BlockBits
	codes := canonicalCodes(res.Lens)
	// Build a decode map from (len, code) to rank.
	type key struct {
		l int
		c uint32
	}
	dec := map[key]int{}
	for r, l := range res.Lens {
		dec[key{l, codes[r]}] = r
	}
	rd := bitio.NewReader(res.Data, res.BitLen)
	out := bitvec.New(outBits)
	pos := 0
	for pos < outBits {
		flag, err := rd.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("huffman: truncated stream at bit %d: %w", pos, err)
		}
		var blk uint64
		if flag == 0 {
			blk, err = rd.ReadBits(b)
			if err != nil {
				return nil, fmt.Errorf("huffman: truncated raw block at bit %d: %w", pos, err)
			}
		} else {
			cur, l := uint32(0), 0
			for {
				bit, err := rd.ReadBit()
				if err != nil {
					return nil, fmt.Errorf("huffman: truncated codeword at bit %d: %w", pos, err)
				}
				cur = cur<<1 | uint32(bit)
				l++
				if r, ok := dec[key{l, cur}]; ok {
					blk = uint64(res.Table[r])
					break
				}
				if l > 32 {
					return nil, fmt.Errorf("huffman: undecodable codeword at bit %d", pos)
				}
			}
		}
		out.SetChunk(pos, b, blk)
		pos += b
	}
	return out, nil
}

// codeLengths builds Huffman code lengths for the given weights
// (package-sorted tie-breaks keep it deterministic). A single symbol
// gets length 1.
func codeLengths(weights []int) []int {
	n := len(weights)
	lens := make([]int, n)
	if n == 0 {
		return lens
	}
	if n == 1 {
		lens[0] = 1
		return lens
	}
	type node struct {
		w, id       int
		left, right int // -1 for leaves
	}
	nodes := make([]node, 0, 2*n)
	h := &nodeHeap{}
	for i, w := range weights {
		nodes = append(nodes, node{w: w, id: i, left: -1, right: -1})
		heap.Push(h, heapItem{w: w, seq: i, idx: i})
	}
	seq := n
	for h.Len() > 1 {
		a := heap.Pop(h).(heapItem)
		bb := heap.Pop(h).(heapItem)
		nodes = append(nodes, node{w: a.w + bb.w, left: a.idx, right: bb.idx})
		heap.Push(h, heapItem{w: a.w + bb.w, seq: seq, idx: len(nodes) - 1})
		seq++
	}
	root := heap.Pop(h).(heapItem).idx
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		nd := nodes[idx]
		if nd.left < 0 {
			lens[nd.id] = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(root, 0)
	return lens
}

// canonicalCodes assigns canonical Huffman codewords for the lengths.
func canonicalCodes(lens []int) []uint32 {
	codes := make([]uint32, len(lens))
	type sym struct{ l, i int }
	order := make([]sym, 0, len(lens))
	for i, l := range lens {
		order = append(order, sym{l, i})
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].l != order[b].l {
			return order[a].l < order[b].l
		}
		return order[a].i < order[b].i
	})
	code, prevLen := uint32(0), 0
	for _, s := range order {
		code <<= uint(s.l - prevLen)
		codes[s.i] = code
		code++
		prevLen = s.l
	}
	return codes
}

type heapItem struct{ w, seq, idx int }

type nodeHeap []heapItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w < h[j].w
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
