package parallel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

// testSet builds a deterministic cube set with the given don't-care
// density; the generator is intentionally independent of bench's so the
// differential tests do not share a code path with the workloads.
func testSet(seed int64, patterns, width int, xDensity float64) *bitvec.CubeSet {
	rng := rand.New(rand.NewSource(seed))
	cs := bitvec.NewCubeSet(width)
	for p := 0; p < patterns; p++ {
		v := bitvec.New(width)
		for i := 0; i < width; i++ {
			if rng.Float64() >= xDensity {
				v.Set(i, bitvec.Bit(rng.Intn(2)))
			}
		}
		if err := cs.Add(v); err != nil {
			panic(err)
		}
	}
	return cs
}

// testJobs builds a job grid: a few seeded sets crossed with a few
// configurations, including FullReset and the DictSize==2^CharBits
// edge.
func testJobs() []Job {
	sets := []*bitvec.CubeSet{
		testSet(1, 40, 61, 0.8),
		testSet(2, 25, 33, 0.5),
		testSet(3, 10, 97, 0.95),
		testSet(4, 17, 24, 0.0),
	}
	cfgs := []core.Config{
		{CharBits: 4, DictSize: 64, EntryBits: 16},
		{CharBits: 2, DictSize: 16, EntryBits: 8, Full: core.FullReset},
		{CharBits: 3, DictSize: 8, EntryBits: 9, Full: core.FullReset}, // literal-only edge
		{CharBits: 7, DictSize: 256, EntryBits: 63, Tie: core.TieNewest},
	}
	var jobs []Job
	for si, s := range sets {
		for ci, cfg := range cfgs {
			jobs = append(jobs, Job{Name: fmt.Sprintf("set%d/cfg%d", si, ci), Set: s, Cfg: cfg})
		}
	}
	return jobs
}

// sequentialResults compresses the jobs one at a time through the same
// public entry points the root API uses.
func sequentialResults(t *testing.T, jobs []Job) []*core.Result {
	t.Helper()
	out := make([]*core.Result, len(jobs))
	for i, j := range jobs {
		res, err := core.Compress(j.Set.SerializeAligned(j.Cfg.CharBits), j.Cfg)
		if err != nil {
			t.Fatalf("sequential %s: %v", j.Name, err)
		}
		out[i] = res
	}
	return out
}

// TestParallelMatchesSequential is the differential property: for every
// worker count and job order, the pool's output is byte-identical to
// the sequential loop, result i always belonging to job i.
func TestParallelMatchesSequential(t *testing.T) {
	jobs := testJobs()
	want := sequentialResults(t, jobs)

	workerCounts := []int{1, runtime.NumCPU(), 2 * runtime.NumCPU()}
	for _, workers := range workerCounts {
		for trial := 0; trial < 3; trial++ {
			// Shuffle the submission order; expectations follow the
			// permutation, so this also proves order-independence.
			perm := rand.New(rand.NewSource(int64(workers*100 + trial))).Perm(len(jobs))
			shuffled := make([]Job, len(jobs))
			for i, p := range perm {
				shuffled[i] = jobs[p]
			}
			results, err := CompressJobs(context.Background(), shuffled, Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d trial=%d: %v", workers, trial, err)
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("workers=%d job %s: %v", workers, r.Job.Name, r.Err)
				}
				exp := want[perm[i]]
				if !bytes.Equal(r.Res.Pack(), exp.Pack()) {
					t.Fatalf("workers=%d job %s: packed stream differs from sequential", workers, r.Job.Name)
				}
				if r.Res.Stats != exp.Stats {
					t.Fatalf("workers=%d job %s: stats differ: %+v vs %+v", workers, r.Job.Name, r.Res.Stats, exp.Stats)
				}
				if r.OriginalBits != shuffled[i].Set.TotalBits() {
					t.Fatalf("workers=%d job %s: OriginalBits %d, want %d", workers, r.Job.Name, r.OriginalBits, shuffled[i].Set.TotalBits())
				}
			}
		}
	}
}

// waitGoroutines polls until the goroutine count settles back to at
// most base, failing after the deadline — the leak guard for
// cancellation paths.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

func TestMapContextCancelMidBatch(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())

	items := make([]int, 64)
	var started atomic.Int32
	outcomes, err := Map(ctx, items, Options{Workers: 2}, func(ctx context.Context, i int, _ int) (int, error) {
		if started.Add(1) == 3 {
			cancel() // cancel from inside the batch, mid-flight
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
			return i, nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("overall error = %v, want context.Canceled", err)
	}
	if len(outcomes) != len(items) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(items))
	}
	// Every job either completed or reports the cancellation; none hang.
	skipped := 0
	for i, o := range outcomes {
		if o.Err != nil {
			if !errors.Is(o.Err, context.Canceled) {
				t.Fatalf("outcome %d: %v, want context.Canceled lineage", i, o.Err)
			}
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation canceled nothing — test raced to completion")
	}
	waitGoroutines(t, base)
}

func TestMapPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	_, err := Map(ctx, []int{1, 2, 3}, Options{}, func(context.Context, int, int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d jobs ran under a pre-canceled context", n)
	}
}

func TestWorkerPanicBecomesJobError(t *testing.T) {
	base := runtime.NumGoroutine()
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	outcomes, err := Map(context.Background(), items, Options{Workers: 3, Policy: CollectAll},
		func(_ context.Context, _ int, v int) (int, error) {
			if v == 4 {
				panic("boom")
			}
			return v * 2, nil
		})
	if err != nil {
		t.Fatalf("collect-all overall error: %v", err)
	}
	for i, o := range outcomes {
		if i == 4 {
			var pe *PanicError
			if !errors.As(o.Err, &pe) {
				t.Fatalf("outcome 4 error = %v, want *PanicError", o.Err)
			}
			if pe.Value != "boom" || len(pe.Stack) == 0 {
				t.Fatalf("panic payload not preserved: %+v", pe)
			}
			continue
		}
		if o.Err != nil || o.Value != i*2 {
			t.Fatalf("outcome %d = (%d, %v), want (%d, nil)", i, o.Value, o.Err, i*2)
		}
	}
	waitGoroutines(t, base)
}

func TestFailFastSkipsRemaining(t *testing.T) {
	boom := errors.New("job 0 failed")
	items := make([]int, 128)
	outcomes, err := Map(context.Background(), items, Options{Workers: 1, Policy: FailFast},
		func(_ context.Context, i int, _ int) (int, error) {
			if i == 0 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("overall error = %v, want the first job error", err)
	}
	skipped := 0
	for i := 1; i < len(outcomes); i++ {
		if errors.Is(outcomes[i].Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("fail-fast did not skip any remaining job")
	}
}

func TestCollectAllRunsEverything(t *testing.T) {
	boom := errors.New("odd jobs fail")
	items := make([]int, 20)
	var ran atomic.Int32
	outcomes, err := Map(context.Background(), items, Options{Workers: 4, Policy: CollectAll},
		func(_ context.Context, i int, _ int) (int, error) {
			ran.Add(1)
			if i%2 == 1 {
				return 0, boom
			}
			return i, nil
		})
	if err != nil {
		t.Fatalf("collect-all overall error: %v", err)
	}
	if int(ran.Load()) != len(items) {
		t.Fatalf("ran %d of %d jobs", ran.Load(), len(items))
	}
	for i, o := range outcomes {
		wantErr := i%2 == 1
		if (o.Err != nil) != wantErr {
			t.Fatalf("outcome %d error = %v, want error: %v", i, o.Err, wantErr)
		}
	}
}

func TestCompressJobsReportsBadJobs(t *testing.T) {
	good := testSet(9, 5, 16, 0.5)
	jobs := []Job{
		{Name: "ok", Set: good, Cfg: core.Config{CharBits: 4, DictSize: 32, EntryBits: 8}},
		{Name: "bad-cfg", Set: good, Cfg: core.Config{CharBits: 0, DictSize: 32}},
		{Name: "empty", Set: bitvec.NewCubeSet(16), Cfg: core.Config{CharBits: 4, DictSize: 32, EntryBits: 8}},
	}
	results, err := CompressJobs(context.Background(), jobs, Options{Policy: CollectAll})
	if err != nil {
		t.Fatalf("collect-all: %v", err)
	}
	if results[0].Err != nil || results[0].Res == nil {
		t.Fatalf("good job failed: %v", results[0].Err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatalf("bad jobs did not error: %v / %v", results[1].Err, results[2].Err)
	}
	if results[1].Res != nil || results[2].Res != nil {
		t.Fatal("failed jobs carry results")
	}
}

func TestPoolTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.New(reg)
	jobs := testJobs()
	if _, err := CompressJobs(context.Background(), jobs, Options{Workers: 4, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters[MetricJobs] != int64(len(jobs)) {
		t.Fatalf("%s = %d, want %d", MetricJobs, counters[MetricJobs], len(jobs))
	}
	if counters[MetricJobErrors] != 0 {
		t.Fatalf("%s = %d, want 0", MetricJobErrors, counters[MetricJobErrors])
	}
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges[MetricQueueDepth] != 0 || gauges[MetricInFlight] != 0 {
		t.Fatalf("queue/in-flight gauges did not drain: %v / %v", gauges[MetricQueueDepth], gauges[MetricInFlight])
	}
	if counters[MetricJobPanics] != 0 {
		t.Fatalf("%s = %d, want 0 on a clean run", MetricJobPanics, counters[MetricJobPanics])
	}
}

// TestPoolPanicTelemetry: a recovered worker panic must surface on the
// panic counter, not vanish into the job-error count alone.
func TestPoolPanicTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.New(reg)
	items := []int{0, 1, 2, 3}
	if _, err := Map(context.Background(), items, Options{Workers: 2, Policy: CollectAll, Recorder: rec},
		func(_ context.Context, _ int, v int) (int, error) {
			if v == 2 {
				panic("boom")
			}
			return v, nil
		}); err != nil {
		t.Fatalf("collect-all: %v", err)
	}
	var got int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == MetricJobPanics {
			got = c.Value
		}
	}
	if got != 1 {
		t.Fatalf("%s = %d, want 1", MetricJobPanics, got)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []ErrorPolicy{FailFast, CollectAll} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

// TestBatchRecyclesDictArena pins the arena contract for the pool: every
// job acquires exactly one dictionary (recycles + misses == jobs), and a
// batch with more jobs than workers reuses dictionaries released by
// earlier jobs rather than allocating fresh ones throughout.
func TestBatchRecyclesDictArena(t *testing.T) {
	// Many copies of the same moderate config so released dictionaries
	// always fit the next acquisition.
	set := testSet(9, 12, 48, 0.7)
	cfg := core.Config{CharBits: 4, DictSize: 128, EntryBits: 20}
	var jobs []Job
	for i := 0; i < 48; i++ {
		jobs = append(jobs, Job{Name: fmt.Sprintf("job%d", i), Set: set, Cfg: cfg})
	}

	reg := telemetry.NewRegistry()
	opts := Options{Workers: 2, Recorder: telemetry.New(reg)}
	if _, err := CompressJobs(context.Background(), jobs, opts); err != nil {
		t.Fatal(err)
	}

	var recycles, misses int64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case core.MetricDictPoolRecycles:
			recycles = c.Value
		case core.MetricDictPoolMisses:
			misses = c.Value
		}
	}
	if recycles+misses != int64(len(jobs)) {
		t.Fatalf("recycles(%d) + misses(%d) = %d, want one acquisition per job (%d)",
			recycles, misses, recycles+misses, len(jobs))
	}
	// 48 jobs over 2 workers: at most a handful of dictionaries can be
	// live at once, so the vast majority of acquisitions must recycle.
	// (sync.Pool may shed entries under GC pressure, hence > 0 rather
	// than an exact count.)
	if recycles == 0 {
		t.Fatalf("no dictionary recycled across %d same-config jobs (misses=%d)", len(jobs), misses)
	}
}
