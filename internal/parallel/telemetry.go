package parallel

import (
	"context"
	"sync/atomic"

	"lzwtc/internal/telemetry"
)

// EventJob is the per-job record the pool emits: one per completed job,
// carrying the job index, outcome and duration (as a batch.job span).
const EventJob = "batch.job"

// Registry metric names for the batch engine. Queue depth and in-flight
// are gauges sampled at dispatch/completion; the rest aggregate across
// runs. The shard ratio histogram (shard.go) records each shard's
// compression ratio so the cost of shard-boundary dictionary resets is
// visible as a distribution, not just an aggregate.
const (
	MetricQueueDepth = "lzwtc_batch_queue_depth"
	MetricInFlight   = "lzwtc_batch_jobs_inflight"
	MetricJobs       = "lzwtc_batch_jobs_total"
	MetricJobErrors  = "lzwtc_batch_job_errors_total"
	MetricJobPanics  = "lzwtc_batch_job_panics_total"
	MetricShards     = "lzwtc_batch_shards_total"
	MetricShardRatio = "lzwtc_batch_shard_ratio"
)

// ShardRatioBuckets returns the histogram bounds for per-shard
// compression ratios: the paper's Table 3 spans 23–89%, and sharding
// can push small shards negative (expansion), hence the low tail.
func ShardRatioBuckets() []float64 {
	return []float64{-0.5, -0.25, 0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

// poolMetrics holds one run's instruments, resolved once so workers
// never touch the registry by name. All fields are nil-safe; a nil
// recorder costs one pointer check per job.
type poolMetrics struct {
	rec      *telemetry.Recorder
	queue    *telemetry.Gauge
	inflight *telemetry.Gauge
	jobs     *telemetry.Counter
	errs     *telemetry.Counter
	panics   *telemetry.Counter

	queued    atomic.Int64
	inflightN atomic.Int64
}

func newPoolMetrics(rec *telemetry.Recorder, queued int) *poolMetrics {
	m := &poolMetrics{rec: rec}
	m.queued.Store(int64(queued))
	if reg := rec.Registry(); reg != nil {
		m.queue = reg.Gauge(MetricQueueDepth, "batch jobs waiting for a worker")
		m.inflight = reg.Gauge(MetricInFlight, "batch jobs currently executing")
		m.jobs = reg.Counter(MetricJobs, "batch jobs completed")
		m.errs = reg.Counter(MetricJobErrors, "batch jobs that returned an error")
		m.panics = reg.Counter(MetricJobPanics, "batch jobs recovered from a panic")
		m.queue.Set(float64(queued))
		m.inflight.Set(0)
	}
	return m
}

// dispatched records one job leaving the queue for a worker.
func (m *poolMetrics) dispatched() {
	m.queue.Set(float64(m.queued.Add(-1)))
}

// jobStart records a worker picking the job up and opens its trace
// span as a child of the request span carried by ctx (when tracing is
// on); the returned context threads the job's span identity into the
// job body so core phases nest beneath it.
func (m *poolMetrics) jobStart(ctx context.Context) (context.Context, *telemetry.TraceSpan) {
	m.inflight.Set(float64(m.inflightN.Add(1)))
	return m.rec.StartSpan(ctx, EventJob)
}

// jobEnd records the job's completion, classifying the error.
func (m *poolMetrics) jobEnd(sp *telemetry.TraceSpan, index int, err error) {
	m.inflight.Set(float64(m.inflightN.Add(-1)))
	m.jobs.Inc()
	status := "ok"
	if err != nil {
		m.errs.Inc()
		status = "error"
		if _, isPanic := err.(*PanicError); isPanic {
			m.panics.Inc()
			status = "panic"
		}
	}
	sp.End(telemetry.F("job", index), telemetry.F("status", status))
}
