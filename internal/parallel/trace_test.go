package parallel

import (
	"context"
	"sync"
	"testing"

	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

// spanCapture is a threadsafe sink collecting decoded span records;
// pool workers emit concurrently.
type spanCapture struct {
	mu    sync.Mutex
	spans []telemetry.SpanRecord
}

func (c *spanCapture) Emit(ev telemetry.Event) {
	if rec, ok := telemetry.SpanRecordFromEvent(ev); ok {
		c.mu.Lock()
		c.spans = append(c.spans, rec)
		c.mu.Unlock()
	}
}

// TestBatchTraceLinkage: every pool job span and the core phases inside
// it must join the request trace carried by ctx — one batch, one trace.
func TestBatchTraceLinkage(t *testing.T) {
	cap := &spanCapture{}
	rec := telemetry.New(telemetry.NewRegistry(), cap)
	ctx, root := rec.StartSpan(context.Background(), "test.batch")

	jobs := testJobs()
	if _, err := CompressJobs(ctx, jobs, Options{Workers: 4, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	root.End()

	rootSC := root.Context()
	byName := map[string][]telemetry.SpanRecord{}
	spanParent := map[string]string{}
	for _, s := range cap.spans {
		if s.TraceID != rootSC.String()[:16] {
			t.Fatalf("span %s in trace %s, want %s", s.Name, s.TraceID, rootSC.String()[:16])
		}
		byName[s.Name] = append(byName[s.Name], s)
		spanParent[s.SpanID] = s.ParentID
	}

	jobSpans := byName[EventJob]
	if len(jobSpans) != len(jobs) {
		t.Fatalf("%q spans = %d, want %d", EventJob, len(jobSpans), len(jobs))
	}
	rootID := rootSC.String()[17:]
	jobIDs := map[string]bool{}
	for _, js := range jobSpans {
		if js.ParentID != rootID {
			t.Fatalf("job span parent %s, want batch root %s", js.ParentID, rootID)
		}
		if js.Attrs["status"] != "ok" {
			t.Fatalf("job span status = %q: %+v", js.Attrs["status"], js)
		}
		jobIDs[js.SpanID] = true
	}

	serSpans := byName[core.SpanSerialize]
	if len(serSpans) != len(jobs) {
		t.Fatalf("%q spans = %d, want %d", core.SpanSerialize, len(serSpans), len(jobs))
	}
	for _, ss := range serSpans {
		if !jobIDs[ss.ParentID] {
			t.Fatalf("serialize span parented on %s, not on any job span", ss.ParentID)
		}
	}
	// Core phases nest beneath the job spans too — the trace descends
	// through the pool into the compression core.
	for _, name := range []string{core.SpanDictBuild, core.SpanMatchLoop} {
		for _, ps := range byName[name] {
			if !jobIDs[ps.ParentID] {
				t.Fatalf("%s span parented on %s, not on any job span", name, ps.ParentID)
			}
		}
		if len(byName[name]) == 0 {
			t.Fatalf("no %s spans recorded", name)
		}
	}
}

// TestShardedTraceLinkage: sharded compression serializes per shard;
// those spans must also join the caller's trace.
func TestShardedTraceLinkage(t *testing.T) {
	cap := &spanCapture{}
	rec := telemetry.New(telemetry.NewRegistry(), cap)
	ctx, root := rec.StartSpan(context.Background(), "test.shard")

	cs := testSet(9, 40, 61, 0.8)
	cfg := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	if _, err := CompressSharded(ctx, cs, cfg, 10, Options{Workers: 2, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	root.End()

	trace := root.Context().String()[:16]
	var serialize int
	for _, s := range cap.spans {
		if s.TraceID != trace {
			t.Fatalf("span %s escaped the trace: %s != %s", s.Name, s.TraceID, trace)
		}
		if s.Name == core.SpanSerialize {
			serialize++
		}
	}
	if serialize < 2 {
		t.Fatalf("sharded run produced %d serialize spans, want one per shard (>=2)", serialize)
	}
}
