package parallel

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

func shardConfig() core.Config {
	return core.Config{CharBits: 4, DictSize: 128, EntryBits: 16}
}

// TestShardedDecompressionExact: sharded compression decompresses to a
// fully specified set that preserves every care bit, and is
// byte-identical to decompressing each shard sequentially (the
// FullReset-boundary contract).
func TestShardedDecompressionExact(t *testing.T) {
	cs := testSet(11, 37, 41, 0.7)
	cfg := shardConfig()
	for _, per := range []int{1, 4, 10, 37, 1000} {
		sr, err := CompressSharded(context.Background(), cs, cfg, per, Options{Workers: 3})
		if err != nil {
			t.Fatalf("per=%d: %v", per, err)
		}
		if sr.Patterns != len(cs.Cubes) || sr.OriginalBits != cs.TotalBits() {
			t.Fatalf("per=%d: geometry %d/%d", per, sr.Patterns, sr.OriginalBits)
		}
		got, err := DecompressSharded(context.Background(), sr, Options{Workers: 3})
		if err != nil {
			t.Fatalf("per=%d decompress: %v", per, err)
		}
		if len(got.Cubes) != len(cs.Cubes) {
			t.Fatalf("per=%d: %d patterns back, want %d", per, len(got.Cubes), len(cs.Cubes))
		}
		for i, c := range cs.Cubes {
			if !c.CompatibleWith(got.Cubes[i]) {
				t.Fatalf("per=%d: pattern %d violates its care bits", per, i)
			}
		}
		// Byte-identical to the sequential per-shard pipeline.
		want := bitvec.NewCubeSet(cs.Width)
		for _, g := range SplitPatterns(cs, per) {
			res, err := core.Compress(g.SerializeAligned(cfg.CharBits), cfg)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := core.Decompress(res.Codes, cfg, res.InputBits)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := bitvec.DeserializeAligned(stream, cs.Width, cfg.CharBits)
			if err != nil {
				t.Fatal(err)
			}
			want.Cubes = append(want.Cubes, sub.Cubes...)
		}
		for i := range want.Cubes {
			if !want.Cubes[i].Equal(got.Cubes[i]) {
				t.Fatalf("per=%d: pattern %d differs from sequential per-shard pipeline", per, i)
			}
		}
	}
}

// TestShardedMatchesSequentialShards: the packed per-shard streams the
// pool produces are byte-identical to compressing each shard alone —
// the sharded half of the differential property, across worker counts.
func TestShardedMatchesSequentialShards(t *testing.T) {
	cs := testSet(12, 50, 29, 0.85)
	cfg := shardConfig()
	const per = 7
	groups := SplitPatterns(cs, per)
	want := make([][]byte, len(groups))
	for i, g := range groups {
		res, err := core.Compress(g.SerializeAligned(cfg.CharBits), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Pack()
	}
	for _, workers := range []int{1, runtime.NumCPU(), 2 * runtime.NumCPU()} {
		sr, err := CompressSharded(context.Background(), cs, cfg, per, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(sr.Shards) != len(groups) {
			t.Fatalf("workers=%d: %d shards, want %d", workers, len(sr.Shards), len(groups))
		}
		for i, sh := range sr.Shards {
			if !bytes.Equal(sh.Pack(), want[i]) {
				t.Fatalf("workers=%d: shard %d stream differs from sequential", workers, i)
			}
		}
	}
}

// TestShardRatioCostMeasured: sharding costs ratio (fresh dictionaries
// per shard) and the aggregate accounting reflects it — compressed
// volume is the sum of shards and the ratio is no better than the
// monolithic run on a workload with cross-pattern structure.
func TestShardRatioCostMeasured(t *testing.T) {
	cs := testSet(13, 120, 64, 0.8)
	cfg := core.Config{CharBits: 4, DictSize: 256, EntryBits: 32}
	mono, err := core.Compress(cs.SerializeAligned(cfg.CharBits), cfg)
	if err != nil {
		t.Fatal(err)
	}
	monoRatio := 1 - float64(mono.Stats.CompressedBits)/float64(cs.TotalBits())
	sr, err := CompressSharded(context.Background(), cs, cfg, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, sh := range sr.Shards {
		sum += sh.Stats.CompressedBits
	}
	if sum != sr.CompressedBits() {
		t.Fatalf("CompressedBits %d != shard sum %d", sr.CompressedBits(), sum)
	}
	if sr.Ratio() > monoRatio+1e-9 {
		t.Fatalf("sharded ratio %.4f beats monolithic %.4f — dictionary reset cost vanished", sr.Ratio(), monoRatio)
	}
}

func TestShardTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.New(reg)
	cs := testSet(14, 30, 32, 0.6)
	sr, err := CompressSharded(context.Background(), cs, shardConfig(), 5, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var shardCount int64
	var histCount int64
	for _, c := range snap.Counters {
		if c.Name == MetricShards {
			shardCount = c.Value
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == MetricShardRatio {
			histCount = h.Count
		}
	}
	if shardCount != int64(len(sr.Shards)) {
		t.Fatalf("%s = %d, want %d", MetricShards, shardCount, len(sr.Shards))
	}
	if histCount != int64(len(sr.Shards)) {
		t.Fatalf("%s observations = %d, want %d", MetricShardRatio, histCount, len(sr.Shards))
	}
}

func TestSplitPatternsBounds(t *testing.T) {
	cs := testSet(15, 10, 8, 0.5)
	if got := SplitPatterns(cs, 0); len(got) != 1 || got[0] != cs {
		t.Fatal("per<=0 must return the whole set")
	}
	if got := SplitPatterns(cs, 10); len(got) != 1 {
		t.Fatal("per==len must return the whole set")
	}
	got := SplitPatterns(cs, 3)
	if len(got) != 4 {
		t.Fatalf("10/3 split into %d shards, want 4", len(got))
	}
	total := 0
	for _, g := range got {
		total += len(g.Cubes)
	}
	if total != 10 {
		t.Fatalf("split lost patterns: %d", total)
	}
}
