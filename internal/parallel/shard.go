package parallel

import (
	"context"
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

// ShardedResult is one large test set compressed as independent
// pattern-group shards. Each shard was compressed with a fresh
// dictionary, so a shard boundary is semantically a FullReset: the
// decompressor state at each boundary is exactly the initial state,
// and decompression is exact shard by shard. Because every pattern is
// padded to a character boundary (SerializeAligned), shard streams
// concatenate back into the whole set with no realignment.
//
// The price is compression ratio: each shard re-learns the dictionary
// from scratch, so short shards never reach the long strings the tail
// of a monolithic run emits. CompressSharded measures that cost (it is
// reported, never guessed): Ratio here vs the unsharded ratio on the
// same set.
type ShardedResult struct {
	// Cfg is the shared configuration every shard was compressed under.
	Cfg core.Config
	// Width is the original pattern width.
	Width int
	// Patterns is the total pattern count across shards.
	Patterns int
	// OriginalBits is the unpadded volume of the whole set.
	OriginalBits int
	// Shards holds each pattern group's independent compression.
	Shards []*core.Result
	// ShardPatterns is the pattern count of each shard, in order.
	ShardPatterns []int
}

// CompressedBits returns the total compressed volume across shards.
func (s *ShardedResult) CompressedBits() int {
	total := 0
	for _, sh := range s.Shards {
		total += sh.Stats.CompressedBits
	}
	return total
}

// Ratio returns the aggregate compression ratio against the unpadded
// original volume.
func (s *ShardedResult) Ratio() float64 {
	if s.OriginalBits == 0 {
		return 0
	}
	return 1 - float64(s.CompressedBits())/float64(s.OriginalBits)
}

// SplitPatterns partitions a cube set into shards of at most
// patternsPerShard consecutive patterns (the per-pattern-group split:
// pattern order is preserved and no pattern is divided). The returned
// sets share the original's cube storage; they must be treated as
// read-only views.
func SplitPatterns(cs *bitvec.CubeSet, patternsPerShard int) []*bitvec.CubeSet {
	if patternsPerShard <= 0 || patternsPerShard >= len(cs.Cubes) {
		return []*bitvec.CubeSet{cs}
	}
	var shards []*bitvec.CubeSet
	for lo := 0; lo < len(cs.Cubes); lo += patternsPerShard {
		hi := lo + patternsPerShard
		if hi > len(cs.Cubes) {
			hi = len(cs.Cubes)
		}
		shards = append(shards, &bitvec.CubeSet{Width: cs.Width, Cubes: cs.Cubes[lo:hi]})
	}
	return shards
}

// CompressSharded splits one test set into per-pattern-group shards and
// compresses them concurrently, each with its own dictionary. Sharding
// is all-or-nothing: any shard failure (or cancellation) fails the
// whole call, regardless of Options.Policy, because a partial shard
// sequence cannot be decompressed into the set.
func CompressSharded(ctx context.Context, cs *bitvec.CubeSet, cfg core.Config, patternsPerShard int, opts Options) (*ShardedResult, error) {
	return compressShardedPre(ctx, cs, cfg, nil, patternsPerShard, opts)
}

// CompressShardedPreloaded is CompressSharded with a warm-start
// dictionary: every shard starts from the same preload (a shard
// boundary reinstalls it rather than cold-starting), so the container
// form matches the wire 'D'-frame semantics. FullReset configs are
// rejected by the underlying preloaded compressor.
func CompressShardedPreloaded(ctx context.Context, cs *bitvec.CubeSet, cfg core.Config, pre *core.Preload, patternsPerShard int, opts Options) (*ShardedResult, error) {
	return compressShardedPre(ctx, cs, cfg, pre, patternsPerShard, opts)
}

func compressShardedPre(ctx context.Context, cs *bitvec.CubeSet, cfg core.Config, pre *core.Preload, patternsPerShard int, opts Options) (*ShardedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cs == nil || len(cs.Cubes) == 0 {
		return nil, fmt.Errorf("parallel: empty test set")
	}
	groups := SplitPatterns(cs, patternsPerShard)
	shardOpts := opts
	shardOpts.Policy = FailFast

	ratioHist := shardRatioHist(opts.Recorder)
	outcomes, err := Map(ctx, groups, shardOpts, func(jctx context.Context, _ int, g *bitvec.CubeSet) (*core.Result, error) {
		_, ssp := opts.Recorder.StartSpan(jctx, core.SpanSerialize)
		stream := g.SerializeAligned(cfg.CharBits)
		ssp.End(telemetry.F("bits", stream.Len()))
		var res *core.Result
		var e error
		if pre != nil {
			res, e = core.CompressWithPreloadObservedCtx(jctx, stream, cfg, pre, opts.Recorder)
		} else {
			res, e = core.CompressObservedCtx(jctx, stream, cfg, opts.Recorder)
		}
		if e != nil {
			return nil, e
		}
		if g.TotalBits() > 0 {
			ratioHist.Observe(1 - float64(res.Stats.CompressedBits)/float64(g.TotalBits()))
		}
		return res, nil
	})
	if err != nil {
		return nil, fmt.Errorf("parallel: sharded compression: %w", err)
	}

	out := &ShardedResult{
		Cfg:          cfg,
		Width:        cs.Width,
		Patterns:     len(cs.Cubes),
		OriginalBits: cs.TotalBits(),
		Shards:       make([]*core.Result, len(groups)),
		ShardPatterns: func() []int {
			ns := make([]int, len(groups))
			for i, g := range groups {
				ns[i] = len(g.Cubes)
			}
			return ns
		}(),
	}
	for i, o := range outcomes {
		out.Shards[i] = o.Value
	}
	if reg := opts.Recorder.Registry(); reg != nil {
		reg.Counter(MetricShards, "shards compressed").Add(int64(len(groups)))
	}
	return out, nil
}

// DecompressSharded inverts CompressSharded: each shard decompresses
// independently (fresh dictionary — the FullReset boundary semantics)
// and the pattern groups concatenate in order. The output is exact:
// byte-identical to decompressing each shard sequentially.
func DecompressSharded(ctx context.Context, s *ShardedResult, opts Options) (*bitvec.CubeSet, error) {
	return decompressShardedPre(ctx, s, nil, opts)
}

// DecompressShardedPreloaded inverts CompressShardedPreloaded: each
// shard decompresses with the preload reinstalled.
func DecompressShardedPreloaded(ctx context.Context, s *ShardedResult, pre *core.Preload, opts Options) (*bitvec.CubeSet, error) {
	return decompressShardedPre(ctx, s, pre, opts)
}

func decompressShardedPre(ctx context.Context, s *ShardedResult, pre *core.Preload, opts Options) (*bitvec.CubeSet, error) {
	shardOpts := opts
	shardOpts.Policy = FailFast
	outcomes, err := Map(ctx, s.Shards, shardOpts, func(jctx context.Context, _ int, sh *core.Result) (*bitvec.CubeSet, error) {
		var stream *bitvec.Vector
		var e error
		if pre != nil {
			stream, e = core.DecompressWithPreloadObservedCtx(jctx, sh.Codes, s.Cfg, pre, sh.InputBits, opts.Recorder)
		} else {
			stream, e = core.DecompressObservedCtx(jctx, sh.Codes, s.Cfg, sh.InputBits, opts.Recorder)
		}
		if e != nil {
			return nil, e
		}
		return bitvec.DeserializeAligned(stream, s.Width, s.Cfg.CharBits)
	})
	if err != nil {
		return nil, fmt.Errorf("parallel: sharded decompression: %w", err)
	}
	out := bitvec.NewCubeSet(s.Width)
	for i, o := range outcomes {
		if got := len(o.Value.Cubes); got != s.ShardPatterns[i] {
			return nil, fmt.Errorf("parallel: shard %d decompressed to %d patterns, want %d", i, got, s.ShardPatterns[i])
		}
		out.Cubes = append(out.Cubes, o.Value.Cubes...)
	}
	return out, nil
}

// shardRatioHist resolves the per-shard ratio histogram, nil-safe.
func shardRatioHist(rec *telemetry.Recorder) *telemetry.Histogram {
	reg := rec.Registry()
	if reg == nil {
		return nil
	}
	return reg.Histogram(MetricShardRatio, "per-shard compression ratio", ShardRatioBuckets())
}
