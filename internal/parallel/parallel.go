// Package parallel is the batch compression engine: a bounded worker
// pool that fans a queue of independent jobs — test set × configuration
// points of the paper's parameter grid — across GOMAXPROCS-scaled
// workers with deterministic, input-ordered results.
//
// The paper's compressor is inherently sequential per stream (the
// dynamic don't-care walk threads dictionary state through every
// character), so single-stream latency is fixed by the algorithm.
// Batch throughput is not: test sets for different cores and different
// configurator points share nothing, exactly like the independent
// blocks a hardware LZ4 accelerator pipelines. This package supplies
// that outer loop once, with the properties every caller needs:
//
//   - results land at the index of their job, regardless of worker
//     count or completion order, so parallel output is byte-identical
//     to a sequential loop;
//   - context cancellation stops dispatch promptly and every goroutine
//     exits before Map returns;
//   - a worker panic is recovered into that job's error (a *PanicError
//     carrying the stack), never a process crash;
//   - the error policy is a knob: FailFast cancels remaining jobs on
//     the first failure, CollectAll runs everything and reports per-job
//     errors.
//
// On top of the generic pool sit CompressJobs (test set × Config
// batches) and, in shard.go, the sharded single-set mode.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

// ErrorPolicy selects how the pool reacts to a failing job.
type ErrorPolicy uint8

// Error policies.
const (
	// FailFast cancels the remaining queue on the first job error; jobs
	// never started report ErrSkipped.
	FailFast ErrorPolicy = iota
	// CollectAll runs every job and leaves each error in its Outcome;
	// the pool itself only fails on context cancellation.
	CollectAll
)

// String names the policy.
func (p ErrorPolicy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case CollectAll:
		return "collect"
	default:
		return fmt.Sprintf("ErrorPolicy(%d)", uint8(p))
	}
}

// ParsePolicy parses a policy name as printed by String.
func ParsePolicy(s string) (ErrorPolicy, error) {
	switch s {
	case "failfast":
		return FailFast, nil
	case "collect":
		return CollectAll, nil
	}
	return 0, fmt.Errorf("parallel: unknown error policy %q (want failfast or collect)", s)
}

// Options configures one pool run.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Policy selects fail-fast or collect-all error handling.
	Policy ErrorPolicy
	// Recorder receives pool telemetry (queue depth, jobs in flight,
	// per-job events) and is threaded into instrumented job bodies.
	// nil runs uninstrumented.
	Recorder *telemetry.Recorder
}

// workerCount resolves the worker bound for n queued jobs.
func (o Options) workerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ErrSkipped marks a job that never ran because an earlier failure
// canceled the queue under FailFast.
var ErrSkipped = errors.New("parallel: job skipped after earlier failure")

// PanicError is a worker panic converted to a job error.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job panic: %v", e.Value)
}

// Outcome is one job's result slot: the value produced or the error
// (job failure, *PanicError, ErrSkipped, or the context's error).
type Outcome[R any] struct {
	Value R
	Err   error
}

// Map runs fn over every item through a bounded worker pool and returns
// one Outcome per item, at the item's index. The overall error is the
// context's error if the run was canceled, else (under FailFast) the
// first job error; under CollectAll per-job errors stay in the
// outcomes. Map does not return until every worker goroutine has
// exited.
func Map[T, R any](ctx context.Context, items []T, opts Options, fn func(ctx context.Context, index int, item T) (R, error)) ([]Outcome[R], error) {
	out := make([]Outcome[R], len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		firstErr error
		errOnce  sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	m := newPoolMetrics(opts.Recorder, len(items))
	queue := make(chan int)
	done := make([]bool, len(items)) // done[i] written only by i's worker
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // feeder
		defer wg.Done()
		defer close(queue)
		for i := range items {
			select {
			case queue <- i:
				m.dispatched()
			case <-inner.Done():
				return
			}
		}
	}()

	workers := opts.workerCount(len(items))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				if inner.Err() != nil {
					// Canceled after dispatch: leave the slot for the
					// post-wait sweep so it reports the cancellation
					// cause, not a partial run.
					continue
				}
				jctx, sp := m.jobStart(inner)
				r, err := runRecovered(jctx, i, items[i], fn)
				m.jobEnd(sp, i, err)
				out[i] = Outcome[R]{Value: r, Err: err}
				done[i] = true
				if err != nil && opts.Policy == FailFast {
					fail(err)
				}
			}
		}()
	}
	wg.Wait()

	// Jobs the cancellation raced past: report why they did not run.
	if inner.Err() != nil {
		skip := ErrSkipped
		if ctx.Err() != nil {
			skip = ctx.Err()
		}
		for i := range done {
			if !done[i] {
				out[i].Err = skip
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if opts.Policy == FailFast && firstErr != nil {
		return out, firstErr
	}
	return out, nil
}

// runRecovered invokes fn with panic containment: a panicking job
// yields a *PanicError instead of unwinding the worker.
func runRecovered[T, R any](ctx context.Context, i int, item T, fn func(context.Context, int, T) (R, error)) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, item)
}

// Job is one batch compression unit: a test set under a configuration.
type Job struct {
	// Name labels the job in results, telemetry and batch records.
	Name string
	// Set is the test set; it is only read, so one set may back many
	// jobs (a parameter sweep over a single circuit).
	Set *bitvec.CubeSet
	// Cfg is the LZW configuration for this job.
	Cfg core.Config
}

// JobResult is one finished compression job in a batch.
type JobResult struct {
	Job Job
	// Res is the compressed stream; nil when Err is set.
	Res *core.Result
	// OriginalBits is the unpadded test-set volume ratios are computed
	// against, mirroring the root API.
	OriginalBits int
	Err          error
}

// Ratio returns the job's compression ratio against the unpadded
// volume, 0 for failed or empty jobs.
func (r JobResult) Ratio() float64 {
	if r.Res == nil || r.OriginalBits == 0 {
		return 0
	}
	return 1 - float64(r.Res.Stats.CompressedBits)/float64(r.OriginalBits)
}

// CompressJobs compresses a batch of jobs across the pool. Each job
// serializes its set aligned to its own character size and compresses
// it exactly as the sequential root API does, so results are
// byte-identical to a one-job-at-a-time loop. The returned slice always
// has one entry per job, in job order.
func CompressJobs(ctx context.Context, jobs []Job, opts Options) ([]JobResult, error) {
	outcomes, err := Map(ctx, jobs, opts, func(jctx context.Context, _ int, j Job) (JobResult, error) {
		res, e := compressJob(jctx, j, opts.Recorder)
		if e != nil {
			return JobResult{}, e
		}
		return JobResult{Job: j, Res: res, OriginalBits: j.Set.TotalBits()}, nil
	})
	results := make([]JobResult, len(jobs))
	for i, o := range outcomes {
		results[i] = o.Value
		if o.Err != nil {
			results[i] = JobResult{Job: jobs[i], Err: o.Err}
		}
	}
	return results, err
}

// compressJob runs one job body: validate, serialize aligned, compress.
// ctx carries the job's trace span, so serialization and the core
// phases attribute under it.
func compressJob(ctx context.Context, j Job, rec *telemetry.Recorder) (*core.Result, error) {
	if err := j.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: job %q: %w", j.Name, err)
	}
	if j.Set == nil || len(j.Set.Cubes) == 0 {
		return nil, fmt.Errorf("parallel: job %q: empty test set", j.Name)
	}
	_, ssp := rec.StartSpan(ctx, core.SpanSerialize)
	stream := j.Set.SerializeAligned(j.Cfg.CharBits)
	ssp.End(telemetry.F("bits", stream.Len()))
	res, err := core.CompressObservedCtx(ctx, stream, j.Cfg, rec)
	if err != nil {
		return nil, fmt.Errorf("parallel: job %q: %w", j.Name, err)
	}
	return res, nil
}
