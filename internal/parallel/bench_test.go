package parallel

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"lzwtc/internal/bench"
	"lzwtc/internal/core"
)

// table3Jobs builds the Table 3 batch: all twelve calibrated circuits
// under their paper configurations. Generation happens once, outside
// the timed region.
func table3Jobs(b *testing.B) ([]Job, int) {
	b.Helper()
	var jobs []Job
	patterns := 0
	for _, p := range bench.Profiles() {
		cc := 7
		for cc > 1 && 1<<uint(cc) >= p.DictSize {
			cc--
		}
		jobs = append(jobs, Job{
			Name: p.Name,
			Set:  p.Generate(),
			Cfg:  core.Config{CharBits: cc, DictSize: p.DictSize, EntryBits: 63},
		})
		patterns += p.Patterns
	}
	return jobs, patterns
}

// BenchmarkBatchCompress measures batch throughput (patterns/sec and
// Mbit/sec of scan data) over the full Table 3 workload at 1, 4 and
// NumCPU workers. On a machine with NumCPU >= 4 the parallel rows
// should clear 3x the workers=1 row; output equivalence with the
// sequential path is pinned separately by TestParallelMatchesSequential.
func BenchmarkBatchCompress(b *testing.B) {
	jobs, patterns := table3Jobs(b)
	bits := 0
	for _, j := range jobs {
		bits += j.Set.TotalBits()
	}
	seen := map[int]bool{}
	var workerCounts []int
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		if !seen[w] {
			seen[w] = true
			workerCounts = append(workerCounts, w)
		}
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := CompressJobs(context.Background(), jobs, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(patterns*b.N)/secs, "patterns/s")
				b.ReportMetric(float64(bits*b.N)/secs/1e6, "Mbit/s")
			}
		})
	}
}

// BenchmarkShardedCompress measures the sharded single-set mode on the
// largest Table 3 circuit (b17): throughput plus the measured ratio
// cost of per-shard dictionary resets, reported as ratio deltas.
func BenchmarkShardedCompress(b *testing.B) {
	p, err := bench.ByName("b17")
	if err != nil {
		b.Fatal(err)
	}
	cs := p.Generate()
	cfg := core.Config{CharBits: 7, DictSize: p.DictSize, EntryBits: 63}
	mono, err := core.Compress(cs.SerializeAligned(cfg.CharBits), cfg)
	if err != nil {
		b.Fatal(err)
	}
	monoRatio := 1 - float64(mono.Stats.CompressedBits)/float64(cs.TotalBits())
	for _, per := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("shard=%d", per), func(b *testing.B) {
			var sr *ShardedResult
			for i := 0; i < b.N; i++ {
				sr, err = CompressSharded(context.Background(), cs, cfg, per, Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(p.Patterns*b.N)/secs, "patterns/s")
			}
			b.ReportMetric(100*sr.Ratio(), "ratio_%")
			b.ReportMetric(100*(monoRatio-sr.Ratio()), "ratio_cost_pp")
		})
	}
}
